"""Training strategy (paper Sec. 3.2).

One trainer covers both regimes of the paper's evaluation protocol:

* **STL** — a net with a single task head (the paper's baseline, one
  dedicated network per task);
* **MTL** — a net with N heads trained by backpropagating the total loss
  ``L_total`` (Eq. 4) through shared and task-specific parameters jointly.

The paper trains with AdamW; the optimiser, learning rate, epochs and
batch size are all configurable to mirror the per-dataset settings of
Sec. 4 ("Training and inference details").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..data.base import MultiTaskDataset, TaskInfo
from ..data.loader import DataLoader
from ..nn.tensor import Tensor
from .architecture import MTLSplitNet
from .losses import MultiTaskLoss

__all__ = ["TrainConfig", "EpochStats", "History", "MultiTaskTrainer", "evaluate"]


@dataclass
class TrainConfig:
    """Hyper-parameters for one training run.

    Defaults follow the paper's MEDIC/FACES setting (AdamW, lr 1e-4)
    scaled to the CPU-sized stand-in models; the 3D Shapes experiments in
    the paper use lr 1e-5 with 10 epochs on full-size backbones.
    """

    epochs: int = 5
    batch_size: int = 64
    lr: float = 3e-3
    weight_decay: float = 0.01
    optimizer: str = "adamw"  # "adamw" | "adam" | "sgd"
    momentum: float = 0.9  # used by SGD only
    grad_clip: Optional[float] = 5.0
    weighting: str = "uniform"
    static_weights: Optional[Dict[str, float]] = None
    label_smoothing: float = 0.0
    recalibrate_bn: bool = True
    seed: int = 0
    shuffle: bool = True
    verbose: bool = False

    def build_optimizer(self, params) -> nn.optim.Optimizer:
        """Instantiate the configured optimiser over ``params``."""
        name = self.optimizer.lower()
        if name == "adamw":
            return nn.AdamW(params, lr=self.lr, weight_decay=self.weight_decay)
        if name == "adam":
            return nn.Adam(params, lr=self.lr, weight_decay=self.weight_decay)
        if name == "sgd":
            return nn.SGD(
                params, lr=self.lr, momentum=self.momentum, weight_decay=self.weight_decay
            )
        raise ValueError(f"unknown optimizer {self.optimizer!r}")


@dataclass
class EpochStats:
    """Aggregated metrics for one epoch."""

    epoch: int
    total_loss: float
    task_losses: Dict[str, float]
    val_accuracy: Dict[str, float] = field(default_factory=dict)
    seconds: float = 0.0


@dataclass
class History:
    """Per-epoch training record returned by the trainer."""

    epochs: List[EpochStats] = field(default_factory=list)

    @property
    def final(self) -> EpochStats:
        if not self.epochs:
            raise ValueError("history is empty")
        return self.epochs[-1]

    def loss_curve(self) -> List[float]:
        return [e.total_loss for e in self.epochs]


def recalibrate_batch_norm(
    net: nn.Module,
    loader: DataLoader,
    max_batches: int = 8,
) -> None:
    """Re-estimate batch-norm running statistics under the final weights.

    Running statistics accumulated *during* training average batches seen
    under old weights; for outputs whose absolute values matter
    (regression heads, calibrated logits) that lag degrades eval-mode
    behaviour.  This resets every batch-norm layer and rebuilds its
    statistics from up to ``max_batches`` forward passes — the standard
    BN re-estimation trick.  No parameters are touched.
    """
    from ..nn.layers import _BatchNorm

    norms = [m for _, m in net.named_modules() if isinstance(m, _BatchNorm)]
    if not norms:
        return
    for norm in norms:
        norm.reset_running_stats()
    net.train()
    with nn.no_grad():
        for index, (images, _labels) in enumerate(loader):
            if index >= max_batches:
                break
            net(Tensor(images))


def evaluate(
    net: MTLSplitNet,
    dataset: MultiTaskDataset,
    batch_size: int = 128,
) -> Dict[str, float]:
    """Per-task metric on ``dataset`` (eval mode, no gradients).

    Classification tasks report top-1 accuracy; regression tasks report
    the coefficient of determination R^2 (1 is perfect, 0 matches the
    mean predictor, negative is worse than the mean predictor).
    """
    net.eval()
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    kinds = {name: dataset.task_info(name).kind for name in net.task_names}
    correct = {name: 0 for name in net.task_names}
    predictions: Dict[str, list] = {n: [] for n in net.task_names}
    total = 0
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    with nn.no_grad():
        for images, labels in loader:
            outputs = net(Tensor(images))
            total += images.shape[0]
            for name in net.task_names:
                if kinds[name] == "regression":
                    predictions[name].append(outputs[name].data)
                else:
                    pred = outputs[name].data.argmax(axis=1)
                    correct[name] += int((pred == labels[name]).sum())
    metrics: Dict[str, float] = {}
    for name in net.task_names:
        if kinds[name] == "regression":
            predicted = np.concatenate(predictions[name]).reshape(total, -1)
            target = dataset.labels[name].reshape(total, -1)
            residual = float(((predicted - target) ** 2).sum())
            spread = float(((target - target.mean(axis=0)) ** 2).sum())
            metrics[name] = 1.0 - residual / spread if spread > 0 else 0.0
        else:
            metrics[name] = correct[name] / total
    return metrics


class MultiTaskTrainer:
    """Joint trainer for STL (one head) and MTL (N heads) nets."""

    def __init__(self, config: Optional[TrainConfig] = None):
        self.config = config if config is not None else TrainConfig()

    # ------------------------------------------------------------------
    def fit(
        self,
        net: MTLSplitNet,
        train_set: MultiTaskDataset,
        val_set: Optional[MultiTaskDataset] = None,
        tasks: Optional[Sequence[TaskInfo]] = None,
    ) -> History:
        """Train ``net`` on ``train_set``; evaluate on ``val_set`` per epoch.

        ``tasks`` defaults to the metadata of every task the net solves;
        the dataset must carry labels for each of them.
        """
        cfg = self.config
        missing = set(net.task_names) - set(train_set.task_names)
        if missing:
            raise ValueError(f"dataset lacks labels for tasks {sorted(missing)}")
        if tasks is None:
            tasks = [train_set.task_info(name) for name in net.task_names]

        criterion = MultiTaskLoss(
            tasks,
            weighting=cfg.weighting,
            static_weights=cfg.static_weights,
            label_smoothing=cfg.label_smoothing,
        )
        params = list(net.parameters()) + criterion.extra_parameters()
        optimizer = cfg.build_optimizer(params)
        loader = DataLoader(
            train_set,
            batch_size=cfg.batch_size,
            shuffle=cfg.shuffle,
            rng=np.random.default_rng(cfg.seed),
        )
        return self._run_epochs(net, criterion, optimizer, loader, val_set)

    # ------------------------------------------------------------------
    def _run_epochs(
        self,
        net: MTLSplitNet,
        criterion: MultiTaskLoss,
        optimizer: nn.optim.Optimizer,
        loader: DataLoader,
        val_set: Optional[MultiTaskDataset],
    ) -> History:
        cfg = self.config
        history = History()
        trainable = [p for p in net.parameters() if p.requires_grad]
        for epoch in range(cfg.epochs):
            start = time.perf_counter()
            net.train()
            running_total = 0.0
            running_tasks = {name: 0.0 for name in criterion.task_names}
            batches = 0
            for images, labels in loader:
                optimizer.zero_grad()
                outputs = net(Tensor(images))
                total, scalars = criterion(outputs, labels)
                total.backward()
                if cfg.grad_clip is not None:
                    nn.clip_grad_norm(trainable, cfg.grad_clip)
                optimizer.step()
                running_total += float(total.item())
                for name, value in scalars.items():
                    running_tasks[name] += value
                batches += 1
            batches = max(batches, 1)
            # Rebuild batch-norm statistics under the freshly-updated
            # weights so eval-mode metrics reflect the current model.
            if cfg.recalibrate_bn:
                recalibrate_batch_norm(net, loader)
            stats = EpochStats(
                epoch=epoch,
                total_loss=running_total / batches,
                task_losses={k: v / batches for k, v in running_tasks.items()},
                seconds=time.perf_counter() - start,
            )
            if val_set is not None:
                stats.val_accuracy = evaluate(net, val_set, batch_size=cfg.batch_size * 2)
            history.epochs.append(stats)
            if cfg.verbose:
                acc = (
                    " ".join(f"{k}={v:.3f}" for k, v in stats.val_accuracy.items())
                    if stats.val_accuracy
                    else ""
                )
                print(
                    f"[epoch {epoch + 1}/{cfg.epochs}] "
                    f"loss={stats.total_loss:.4f} {acc} ({stats.seconds:.1f}s)"
                )
        return history
