"""Synthetic-load benchmark for the dynamic-batching front-end.

Answers the serving question the ROADMAP poses: does request-level
traffic (many clients, one image each) actually reach the batch-sharded
engine?  :func:`run_serve_bench` drives a deployment two ways on the
same host:

* **sequential baseline** — one thread calling batch-1
  :meth:`~repro.serve.deployment.Deployment.infer` in a closed loop:
  what serving looked like before the batcher (the ROADMAP's "batch-1
  runs one shard" open item);
* **concurrent submit()** — N closed-loop client threads, each
  submitting one image at a time through
  :meth:`~repro.serve.deployment.Deployment.submit` and waiting for its
  future; the dispatcher coalesces whatever the clients manage to queue.

Per run it records wall-clock throughput, client-observed p50/p95
latency, and the dispatched batch-size distribution — the evidence that
coalescing happened (or didn't: a single closed-loop client can never
batch with itself, and pays the queue delay for nothing; the numbers
show that honestly).

:func:`run_overload_bench` asks the harder robustness question: what
happens when traffic does **not** wait for the server?  It drives the
deployment *open-loop* — requests arrive on an
:class:`~repro.data.streams.ArrivalSpec` schedule regardless of
completion — at offered loads spanning saturation (fractions and
multiples of a closed-loop calibrated capacity), and records throughput,
latency percentiles and the overload outcome split
(completed/shed/expired) per load point.  The capacity calibration runs
*before and after* the sweep on the same deployment (the interleaved
same-run baseline discipline), so thermal or cache drift shows up as a
stamped ``drift`` number instead of silently skewing the load factors.

:func:`run_cache_bench` measures what the content-addressed serve cache
(:mod:`repro.serve.cache`) buys under *repetitive* traffic: it sweeps
duplicate fraction (seeded ``repeat``/``zipf`` popularity streams from
:mod:`repro.data.streams`) and, per point, drives a cache-off and a
cache-on deployment back-to-back on the *same* request stream — the
interleaved-baseline discipline again, now across the cache axis.  Each
point also cross-checks equivalence: every cache-on result must match
the cache-off result for the same image within 1e-6, and every repeat
of an image within the cache-on run must be bit-identical to its first
occurrence.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..data.streams import ArrivalSpec, PopularitySpec, make_request_stream
from ..models.registry import get_spec
from .batching import DeadlineExceededError, RejectedError
from .cache import CachePolicy
from .cluster import ClusterSpec, deploy_cluster
from .deployment import Deployment, deploy
from .spec import DeploymentSpec

__all__ = [
    "ClientLoadResult",
    "OverloadPoint",
    "run_serve_bench",
    "render_serve_bench",
    "run_overload_bench",
    "render_overload_bench",
    "run_cluster_bench",
    "render_cluster_bench",
    "run_cache_bench",
    "render_cache_bench",
]


def _percentile_ms(latencies: Sequence[float], q: float) -> float:
    """q-th percentile of a latency list, in milliseconds."""
    if not latencies:
        return 0.0
    return float(np.percentile(np.asarray(latencies) * 1e3, q))


@dataclass
class ClientLoadResult:
    """One load point: ``clients`` closed-loop clients, ``requests`` total."""

    mode: str  # "sequential" or "submit"
    clients: int
    requests: int
    wall_seconds: float
    p50_ms: float
    p95_ms: float
    mean_batch_size: float

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.wall_seconds if self.wall_seconds else 0.0

    def to_dict(self) -> Dict[str, float]:
        data = asdict(self)
        data["throughput_rps"] = self.throughput_rps
        return data


def _synthetic_images(deployment: Deployment, count: int, seed: int) -> np.ndarray:
    spec = deployment.net.backbone.spec
    size = deployment.spec.input_size
    rng = np.random.default_rng(seed)
    return rng.standard_normal(
        (count, spec.input_channels, size, size), dtype=np.float32
    )


def _run_sequential(
    deployment: Deployment, images: np.ndarray
) -> ClientLoadResult:
    latencies: List[float] = []
    start = time.perf_counter()
    for image in images:
        t0 = time.perf_counter()
        deployment.infer(image[None])
        latencies.append(time.perf_counter() - t0)
    wall = time.perf_counter() - start
    return ClientLoadResult(
        mode="sequential",
        clients=1,
        requests=len(images),
        wall_seconds=wall,
        p50_ms=_percentile_ms(latencies, 50),
        p95_ms=_percentile_ms(latencies, 95),
        mean_batch_size=1.0,
    )


def _run_concurrent(
    deployment: Deployment,
    images: np.ndarray,
    clients: int,
    requests_per_client: int,
) -> ClientLoadResult:
    latencies: List[List[float]] = [[] for _ in range(clients)]
    errors: List[BaseException] = []
    barrier = threading.Barrier(clients + 1)
    batches_before = deployment.batching_stats.batches
    images_before = deployment.batching_stats.images

    def client(index: int) -> None:
        rng = np.random.default_rng(index)
        try:
            barrier.wait()
            for _ in range(requests_per_client):
                image = images[rng.integers(len(images))]
                t0 = time.perf_counter()
                deployment.submit(image).result(timeout=120)
                latencies[index].append(time.perf_counter() - t0)
        except BaseException as error:  # surfaced after join
            errors.append(error)

    threads = [
        threading.Thread(target=client, args=(i,), name=f"serve-bench-client-{i}")
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    if errors:
        raise errors[0]

    stats = deployment.batching_stats
    batches = stats.batches - batches_before
    dispatched = stats.images - images_before
    flat = [value for per_client in latencies for value in per_client]
    return ClientLoadResult(
        mode="submit",
        clients=clients,
        requests=clients * requests_per_client,
        wall_seconds=wall,
        p50_ms=_percentile_ms(flat, 50),
        p95_ms=_percentile_ms(flat, 95),
        mean_batch_size=dispatched / batches if batches else 0.0,
    )


def run_serve_bench(
    spec: DeploymentSpec,
    client_counts: Sequence[int] = (1, 8, 64),
    requests_per_client: int = 8,
    baseline_requests: Optional[int] = None,
    seed: int = 0,
) -> Dict:
    """Benchmark ``submit()`` under synthetic concurrent load.

    One deployment serves every load point (so plan caches stay warm and
    the comparison is steady-state); the sequential batch-1 baseline
    runs first on the same deployment.  Returns a JSON-ready dict with
    the baseline, one entry per client count, and the best
    concurrent-vs-sequential throughput ratio.
    """
    if baseline_requests is None:
        baseline_requests = max(int(count) for count in client_counts) * 2
    with deploy(spec) as deployment:
        images = _synthetic_images(
            deployment, count=max(64, baseline_requests), seed=seed
        )
        deployment.warmup(
            sorted({1, spec.max_batch_size, max(spec.max_batch_size // 2, 1)})
        )
        sequential = _run_sequential(deployment, images[:baseline_requests])
        points = [
            _run_concurrent(deployment, images, int(clients), requests_per_client)
            for clients in client_counts
        ]
        histogram = dict(
            sorted(deployment.batching_stats.batch_size_histogram.items())
        )
    best = max(points, key=lambda point: point.throughput_rps)
    return {
        "spec": spec.to_dict() if isinstance(spec.model, str) else spec.describe(),
        # Provenance: this bench is closed-loop (clients wait for each
        # reply), so there is no arrival process; the fault-plan digest
        # names the wire fault schedule, if any, for replay.
        "arrival": None,
        "fault_plan_digest": (
            spec.faults.digest() if spec.faults is not None else None
        ),
        "sequential": sequential.to_dict(),
        "concurrent": [point.to_dict() for point in points],
        "batch_size_histogram": {str(k): v for k, v in histogram.items()},
        "best_speedup_vs_sequential": (
            best.throughput_rps / sequential.throughput_rps
            if sequential.throughput_rps
            else 0.0
        ),
    }


@dataclass
class OverloadPoint:
    """One open-loop load point of :func:`run_overload_bench`."""

    load_factor: float   # offered rate as a multiple of calibrated capacity
    offered_rps: float   # the arrival process's mean rate
    arrival: str         # canonical ArrivalSpec string for this point
    requests: int        # offered requests
    completed: int
    shed: int            # rejected at admission (queue full)
    expired: int         # deadline exceeded while queued
    failed: int          # any other error surfaced by the future
    wall_seconds: float  # first submission to last resolution
    p50_ms: float
    p95_ms: float

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    def to_dict(self) -> Dict[str, float]:
        data = asdict(self)
        data["throughput_rps"] = self.throughput_rps
        data["shed_rate"] = self.shed_rate
        return data


def _run_open_loop(
    deployment: Deployment,
    images: np.ndarray,
    arrival: ArrivalSpec,
    count: int,
    load_factor: float,
    timeout: float = 120.0,
) -> OverloadPoint:
    """Offer ``count`` requests on ``arrival``'s schedule, then settle.

    Open loop: the driver sleeps to each arrival time and submits no
    matter how far behind the server is — admission control (not the
    client) decides what gets dropped.  Every accepted future is awaited
    afterwards, so a deadlock would fail the timeout loudly instead of
    hanging the sweep.
    """
    times = arrival.sample(count)
    outstanding: List["tuple"] = []  # (submit time, future)
    shed = 0
    start = time.perf_counter()
    for index, arrival_s in enumerate(times):
        behind = arrival_s - (time.perf_counter() - start)
        if behind > 0:
            time.sleep(behind)
        image = images[index % len(images)]
        t0 = time.perf_counter()
        try:
            future = deployment.submit(image)
        except RejectedError:
            shed += 1
            continue
        outstanding.append((t0, future))

    completed = expired = failed = 0
    latencies: List[float] = []
    for t0, future in outstanding:
        try:
            future.result(timeout=timeout)
        except DeadlineExceededError:
            expired += 1
        except Exception:
            failed += 1
        else:
            completed += 1
            latencies.append(time.perf_counter() - t0)
    wall = time.perf_counter() - start
    return OverloadPoint(
        load_factor=load_factor,
        offered_rps=arrival.mean_rate(),
        arrival=arrival.to_string(),
        requests=count,
        completed=completed,
        shed=shed,
        expired=expired,
        failed=failed,
        wall_seconds=wall,
        p50_ms=_percentile_ms(latencies, 50),
        p95_ms=_percentile_ms(latencies, 95),
    )


def run_overload_bench(
    spec: DeploymentSpec,
    load_factors: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    requests_per_point: int = 48,
    arrival: Union[str, ArrivalSpec] = "poisson",
    calibration_requests: int = 24,
    seed: int = 0,
) -> Dict:
    """Sweep open-loop offered load across saturation on one deployment.

    Capacity is calibrated with closed-loop batch-1 requests before
    *and after* the sweep (same deployment, warm caches); each load
    point offers ``requests_per_point`` requests at ``factor x
    capacity``.  ``arrival`` shapes the schedule: a kind name
    (``"poisson"``/``"bursty"``/``"diurnal"``) with default parameters,
    or a full :class:`~repro.data.streams.ArrivalSpec` template whose
    rate is overridden per load point.  The spec's overload knobs
    (``max_queue_depth``, ``deadline_ms``) decide what sheds; the spec's
    fault plan, if any, is stamped into the result by digest so the
    artifact names its fault schedule.
    """
    template = (
        ArrivalSpec(kind=arrival, seed=seed)
        if isinstance(arrival, str)
        else arrival
    )
    with deploy(spec) as deployment:
        images = _synthetic_images(
            deployment, count=max(64, requests_per_point), seed=seed
        )
        deployment.warmup(
            sorted({1, spec.max_batch_size, max(spec.max_batch_size // 2, 1)})
        )
        before = _run_sequential(deployment, images[:calibration_requests])
        capacity = before.throughput_rps
        points = [
            _run_open_loop(
                deployment,
                images,
                replace(template, rate_rps=max(capacity * factor, 1e-3)),
                requests_per_point,
                float(factor),
            )
            for factor in load_factors
        ]
        after = _run_sequential(deployment, images[:calibration_requests])
        stats = deployment.batching_stats
        conservation = {
            "submitted": stats.submitted,
            "shed": stats.shed,
            "requests": stats.requests,
            "completed": stats.completed,
            "expired": stats.expired,
            "failed": stats.failed,
            "cancelled": stats.cancelled,
        }
    return {
        "spec": spec.to_dict() if isinstance(spec.model, str) else spec.describe(),
        "arrival_kind": template.kind,
        "arrival_template": template.to_string(),
        "fault_plan_digest": (
            spec.faults.digest() if spec.faults is not None else None
        ),
        "calibration": {
            "requests": calibration_requests,
            "before_rps": before.throughput_rps,
            "after_rps": after.throughput_rps,
            "drift": (
                after.throughput_rps / before.throughput_rps - 1.0
                if before.throughput_rps
                else 0.0
            ),
        },
        "capacity_rps": capacity,
        "points": [point.to_dict() for point in points],
        "batcher_conservation": conservation,
    }


def run_cluster_bench(
    spec: Union[ClusterSpec, DeploymentSpec],
    requests: int = 64,
    seed: int = 0,
    timeout: float = 120.0,
) -> Dict:
    """Drive one replica cluster with a burst of ``submit`` requests.

    Builds the cluster (forking its worker processes), warms every
    replica, offers ``requests`` single-image submissions as fast as the
    admission policy allows, awaits every accepted future, and returns a
    JSON-ready dict: throughput, client-observed p50/p95, the per-request
    outcome split, the cluster report (per-replica stats, supervisor
    counters, state history) and the ``WorkerFaultPlan`` digest if chaos
    was scheduled.  Run it at ``replicas=1`` and ``replicas=N`` to
    measure the honest process-fan-out overhead on one host.
    """
    cluster_spec = (
        spec if isinstance(spec, ClusterSpec) else ClusterSpec(deployment=spec)
    )
    dspec = cluster_spec.deployment
    channels = get_spec(dspec.model).input_channels
    rng = np.random.default_rng(seed)
    images = rng.standard_normal(
        (max(requests, 1), channels, dspec.input_size, dspec.input_size),
        dtype=np.float32,
    )
    with deploy_cluster(cluster_spec) as cluster:
        cluster.warmup(
            sorted({1, dspec.max_batch_size, max(dspec.max_batch_size // 2, 1)})
        )
        outstanding: List["tuple"] = []
        shed = 0
        start = time.perf_counter()
        for index in range(requests):
            t0 = time.perf_counter()
            try:
                future = cluster.submit(images[index % len(images)])
            except RejectedError:
                shed += 1
                continue
            outstanding.append((t0, future))
        completed = expired = failed = 0
        latencies: List[float] = []
        for t0, future in outstanding:
            try:
                future.result(timeout=timeout)
            except DeadlineExceededError:
                expired += 1
            except Exception:
                failed += 1
            else:
                completed += 1
                latencies.append(time.perf_counter() - t0)
        wall = time.perf_counter() - start
        report = cluster.report()
        stats = cluster.batching_stats
        conservation = {
            "submitted": stats.submitted,
            "shed": stats.shed,
            "requests": stats.requests,
            "completed": stats.completed,
            "expired": stats.expired,
            "failed": stats.failed,
            "cancelled": stats.cancelled,
        }
    return {
        "cluster_spec": cluster_spec.to_dict(),
        "replicas": cluster_spec.replicas,
        "requests": requests,
        "completed": completed,
        "shed": shed,
        "expired": expired,
        "failed": failed,
        "wall_seconds": wall,
        "throughput_rps": completed / wall if wall else 0.0,
        "p50_ms": _percentile_ms(latencies, 50),
        "p95_ms": _percentile_ms(latencies, 95),
        "worker_fault_digest": (
            cluster_spec.worker_faults.digest()
            if cluster_spec.worker_faults is not None
            else None
        ),
        "report": report.to_dict(),
        "batcher_conservation": conservation,
    }


def render_cluster_bench(result: Dict) -> str:
    """Human-readable summary for one :func:`run_cluster_bench` result."""
    report = result["report"]
    agg = report["aggregate"]
    lines = [
        f"{result['replicas']} replica(s): {result['throughput_rps']:.1f} req/s, "
        f"p50 {result['p50_ms']:.2f} ms, p95 {result['p95_ms']:.2f} ms "
        f"({result['completed']} done, {result['shed']} shed, "
        f"{result['expired']} expired, {result['failed']} failed)",
        f"supervision: {agg['worker_crashes']} crash(es), "
        f"{agg['worker_restarts']} restart(s), {agg['failovers']} failover(s), "
        f"{report['kills_injected']} kill(s) injected; "
        f"final state {report['state']}",
    ]
    for entry in report["per_replica"]:
        p50 = f"{entry['p50_ms']:.2f}" if entry["p50_ms"] is not None else "-"
        p95 = f"{entry['p95_ms']:.2f}" if entry["p95_ms"] is not None else "-"
        lines.append(
            f"  slot {entry['slot']}: "
            f"{'up' if entry['alive'] else 'DOWN'}, "
            f"{entry['dispatches']} batch(es), p50 {p50} ms, p95 {p95} ms"
        )
    for change in report["state_history"]:
        lines.append(
            f"  t+{change['t_s']:.3f}s {change['from']} -> {change['to']} "
            f"({change['reason']})"
        )
    digest = result.get("worker_fault_digest")
    lines.append(
        "worker fault plan: " + (f"sha256:{digest[:16]}…" if digest else "none")
    )
    return "\n".join(lines)


def render_overload_bench(result: Dict) -> str:
    """Human-readable table for one :func:`run_overload_bench` result."""
    calibration = result["calibration"]
    lines = [
        f"capacity (closed-loop batch-1): {result['capacity_rps']:.1f} req/s "
        f"(after sweep: {calibration['after_rps']:.1f}, "
        f"drift {calibration['drift']:+.1%})",
        f"{'load':>6}{'offered/s':>11}{'done/s':>9}{'p50 ms':>9}{'p95 ms':>9}"
        f"{'done':>6}{'shed':>6}{'expired':>8}{'failed':>7}",
    ]
    for row in result["points"]:
        lines.append(
            f"{row['load_factor']:>5.2f}x{row['offered_rps']:>11.1f}"
            f"{row['throughput_rps']:>9.1f}{row['p50_ms']:>9.2f}"
            f"{row['p95_ms']:>9.2f}{row['completed']:>6}{row['shed']:>6}"
            f"{row['expired']:>8}{row['failed']:>7}"
        )
    digest = result.get("fault_plan_digest")
    lines.append(
        f"arrival: {result['arrival_kind']}; fault plan: "
        + (f"sha256:{digest[:16]}…" if digest else "none")
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Content-addressed cache benchmark
# ---------------------------------------------------------------------------
def _result_rows(result) -> Dict[str, np.ndarray]:
    """Normalise a ``submit()`` result to a ``{name: array}`` mapping."""
    if isinstance(result, dict):
        return {name: np.asarray(row) for name, row in result.items()}
    return {"output": np.asarray(result)}


def _max_abs_diff(a, b) -> float:
    """Largest elementwise difference between two results (inf on
    mismatched task sets)."""
    rows_a, rows_b = _result_rows(a), _result_rows(b)
    if sorted(rows_a) != sorted(rows_b):
        return float("inf")
    worst = 0.0
    for name, row in rows_a.items():
        other = rows_b[name]
        if row.shape != other.shape:
            return float("inf")
        if row.size:
            delta = np.abs(
                row.astype(np.float64) - other.astype(np.float64)
            )
            worst = max(worst, float(delta.max()))
    return worst


def _bitwise_equal(a, b) -> bool:
    rows_a, rows_b = _result_rows(a), _result_rows(b)
    return sorted(rows_a) == sorted(rows_b) and all(
        rows_a[name].dtype == rows_b[name].dtype
        and rows_a[name].shape == rows_b[name].shape
        and rows_a[name].tobytes() == rows_b[name].tobytes()
        for name in rows_a
    )


def _offer_stream(
    deployment, stream, timeout: float = 120.0
) -> "tuple[Dict, List[Optional[object]]]":
    """Open-loop offer of a request stream, keeping per-request results.

    Same discipline as :func:`_run_open_loop`, but the stream carries
    its own images and arrival times, and every completed result is
    returned by request index so the caller can cross-check cache-on
    against cache-off numerics.
    """
    results: List[Optional[object]] = [None] * len(stream)
    counts = {"completed": 0, "shed": 0, "expired": 0, "failed": 0}
    latencies: List[float] = []
    outstanding: List["tuple"] = []
    start = time.perf_counter()
    for index, request in enumerate(stream):
        behind = request.arrival_s - (time.perf_counter() - start)
        if behind > 0:
            time.sleep(behind)
        t0 = time.perf_counter()
        try:
            future = deployment.submit(request.image)
        except RejectedError:
            counts["shed"] += 1
            continue
        outstanding.append((index, t0, future))
    for index, t0, future in outstanding:
        try:
            results[index] = future.result(timeout=timeout)
        except DeadlineExceededError:
            counts["expired"] += 1
        except Exception:
            counts["failed"] += 1
        else:
            counts["completed"] += 1
            latencies.append(time.perf_counter() - t0)
    wall = time.perf_counter() - start
    point = dict(
        counts,
        requests=len(stream),
        wall_seconds=wall,
        throughput_rps=counts["completed"] / wall if wall else 0.0,
        p50_ms=_percentile_ms(latencies, 50),
        p95_ms=_percentile_ms(latencies, 95),
    )
    return point, results


def _cache_counters(deployment: Deployment) -> Dict[str, int]:
    """Flattened cumulative cache counters (``{tier}_{counter}``)."""
    flat: Dict[str, int] = {}
    for tier, snapshot in deployment.cache_stats().items():
        for counter in ("hits", "misses", "stores", "evictions",
                        "coalesced"):
            flat[f"{tier}_{counter}"] = int(snapshot.get(counter, 0))
    return flat


def run_cache_bench(
    spec: DeploymentSpec,
    duplicate_rates: Sequence[float] = (0.0, 0.5, 0.9),
    requests_per_point: int = 48,
    load_factor: float = 4.0,
    arrival: Union[str, ArrivalSpec] = "poisson",
    zipf: Union[str, PopularitySpec, None] = None,
    calibration_requests: int = 16,
    seed: int = 0,
    timeout: float = 120.0,
) -> Dict:
    """Measure the serve cache across a duplicate-fraction sweep.

    Two deployments of the same spec — one with ``spec.cache`` (default
    policy if the spec leaves it unset), one with caching stripped — are
    driven back-to-back on the *same* open-loop request stream at
    ``load_factor``x the calibrated closed-loop capacity, once per
    duplicate rate (``repeat:rate=...`` popularity) plus one Zipf point
    whose default universe (``requests_per_point // 10``) concentrates
    ≥90% of traffic on a few images.  Every point uses a fresh image
    pool, so per-point cache counter deltas are exact.

    Per point the result records throughput off/on (``speedup``), the
    cache counter deltas, and two equivalence checks the CI gates on:
    ``max_abs_diff`` between cache-on and cache-off results for the same
    request (must be ≤ 1e-6) and ``duplicates_bit_identical`` (every
    repeat of an image inside the cache-on run returns bytes identical
    to its first occurrence).
    """
    policy = spec.cache if spec.cache is not None else CachePolicy()
    on_spec = replace(spec, cache=policy)
    off_spec = replace(spec, cache=None)
    template = (
        ArrivalSpec(kind=arrival, seed=seed)
        if isinstance(arrival, str)
        else arrival
    )
    if zipf is None:
        zipf = PopularitySpec(
            kind="zipf", s=1.1, universe=max(requests_per_point // 10, 1)
        )
    elif isinstance(zipf, str):
        zipf = PopularitySpec.from_string(zipf)

    with deploy(off_spec) as off, deploy(on_spec) as on:
        warm = sorted(
            {1, spec.max_batch_size, max(spec.max_batch_size // 2, 1)}
        )
        off.warmup(warm)
        on.warmup(warm)
        calibration = _synthetic_images(
            off, count=calibration_requests, seed=seed
        )
        capacity = _run_sequential(off, calibration).throughput_rps
        offered = max(capacity * load_factor, 1e-3)

        def run_point(label: str, popularity, pool_seed: int) -> Dict:
            pool = _synthetic_images(
                off, count=requests_per_point, seed=pool_seed
            )
            stream = make_request_stream(
                replace(template, rate_rps=offered),
                {"bench": list(pool)},
                requests_per_point,
                popularity=popularity,
            )
            off_point, off_results = _offer_stream(off, stream, timeout)
            before = _cache_counters(on)
            on_point, on_results = _offer_stream(on, stream, timeout)
            cache_delta = {
                key: value - before.get(key, 0)
                for key, value in _cache_counters(on).items()
            }
            compared = 0
            max_diff = 0.0
            for a, b in zip(off_results, on_results):
                if a is not None and b is not None:
                    compared += 1
                    max_diff = max(max_diff, _max_abs_diff(a, b))
            first_seen: Dict[bytes, object] = {}
            duplicates_compared = 0
            identical = True
            for request, result in zip(stream, on_results):
                if result is None:
                    continue
                key = request.image.tobytes()
                if key in first_seen:
                    duplicates_compared += 1
                    identical = identical and _bitwise_equal(
                        first_seen[key], result
                    )
                else:
                    first_seen[key] = result
            unique = len({r.image.tobytes() for r in stream})
            return {
                "label": label,
                "popularity": (
                    popularity
                    if isinstance(popularity, str)
                    else popularity.to_string()
                ),
                "offered_duplicate_rate": (
                    (len(stream) - unique) / len(stream) if stream else 0.0
                ),
                "off": off_point,
                "on": on_point,
                "speedup": (
                    on_point["throughput_rps"] / off_point["throughput_rps"]
                    if off_point["throughput_rps"]
                    else 0.0
                ),
                "cache": cache_delta,
                "compared": compared,
                "max_abs_diff": max_diff,
                "duplicates_compared": duplicates_compared,
                "duplicates_bit_identical": identical,
            }

        points = [
            run_point(
                f"repeat {float(rate):.0%}",
                f"repeat:rate={float(rate)!r}",
                pool_seed=seed + 1 + index,
            )
            for index, rate in enumerate(duplicate_rates)
        ]
        zipf_point = run_point(
            f"zipf s={zipf.s:g} universe={zipf.universe}",
            zipf,
            pool_seed=seed + 1 + len(points),
        )

        def conservation(deployment: Deployment) -> Dict[str, int]:
            stats = deployment.batching_stats
            return {
                "submitted": stats.submitted,
                "shed": stats.shed,
                "cache_hits": stats.cache_hits,
                "requests": stats.requests,
                "completed": stats.completed,
                "expired": stats.expired,
                "failed": stats.failed,
                "cancelled": stats.cancelled,
            }

        ledgers = {"off": conservation(off), "on": conservation(on)}
    return {
        "spec": (
            spec.to_dict() if isinstance(spec.model, str) else spec.describe()
        ),
        "cache_policy": policy.to_string(),
        "arrival_template": template.to_string(),
        "capacity_rps": capacity,
        "offered_rps": offered,
        "load_factor": load_factor,
        "requests_per_point": requests_per_point,
        "points": points,
        "zipf_point": zipf_point,
        "batcher_conservation": ledgers,
    }


def render_cache_bench(result: Dict) -> str:
    """Human-readable table for one :func:`run_cache_bench` result."""
    lines = [
        f"cache policy: {result['cache_policy']}; offered "
        f"{result['offered_rps']:.1f} req/s "
        f"({result['load_factor']:g}x capacity "
        f"{result['capacity_rps']:.1f} req/s)",
        f"{'point':<24}{'dup%':>6}{'off/s':>9}{'on/s':>9}{'speedup':>9}"
        f"{'hits':>6}{'maxdiff':>10}{'bitwise':>9}",
    ]
    for row in [*result["points"], result["zipf_point"]]:
        hits = row["cache"].get("response_hits", 0)
        lines.append(
            f"{row['label']:<24}{row['offered_duplicate_rate']:>6.0%}"
            f"{row['off']['throughput_rps']:>9.1f}"
            f"{row['on']['throughput_rps']:>9.1f}{row['speedup']:>8.2f}x"
            f"{hits:>6}{row['max_abs_diff']:>10.1e}"
            f"{'yes' if row['duplicates_bit_identical'] else 'NO':>9}"
        )
    ledger = result["batcher_conservation"]["on"]
    lines.append(
        "cache-on ledger: "
        f"submitted {ledger['submitted']} == shed {ledger['shed']} "
        f"+ cache_hits {ledger['cache_hits']} "
        f"+ requests {ledger['requests']}"
    )
    return "\n".join(lines)


def render_serve_bench(result: Dict) -> str:
    """Human-readable table for one :func:`run_serve_bench` result."""
    rows = [result["sequential"], *result["concurrent"]]
    lines = [
        f"{'mode':<12}{'clients':>8}{'requests':>10}{'req/s':>10}"
        f"{'p50 ms':>10}{'p95 ms':>10}{'mean batch':>12}",
    ]
    for row in rows:
        lines.append(
            f"{row['mode']:<12}{row['clients']:>8}{row['requests']:>10}"
            f"{row['throughput_rps']:>10.1f}{row['p50_ms']:>10.2f}"
            f"{row['p95_ms']:>10.2f}{row['mean_batch_size']:>12.2f}"
        )
    lines.append(
        "best concurrent throughput vs sequential batch-1: "
        f"{result['best_speedup_vs_sequential']:.2f}x"
    )
    histogram = result.get("batch_size_histogram")
    if histogram:
        pairs = ", ".join(f"{k}: {v}" for k, v in histogram.items())
        lines.append(f"dispatched batch sizes {{size: count}}: {pairs}")
    return "\n".join(lines)
