"""Split-computing pipeline runtime (paper Fig. 1, executed).

This module is the execution layer under :mod:`repro.serve`: the
:class:`EdgeRuntime` runs the edge half and serialises ``Z_b`` payloads, a
:class:`SimulatedLink` accounts their transfer time, and the
:class:`ServerRuntime` decodes them and runs the task heads.  The
pipeline's outputs are numerically identical to the monolithic network
when the float32 wire format is used — the property the integration tests
assert — and the accumulated timing gives a measured (not merely
modelled) view of where inference time goes.

Both runtimes execute through the fused inference compiler
(:mod:`repro.nn.fuse`) by default: batch-norm folded into conv weights,
activations fused, no autograd graph.  On top of that, the arena-planned
execution engine (:mod:`repro.nn.engine`) is enabled by default: a static
per-batch-shape plan with preallocated buffers and sparse-lowered
convolutions, optionally batch-sharded across ``num_workers`` threads.
Pass ``planned=False`` for the plain fused session or ``compiled=False``
for the eval-mode ``Tensor`` forward.

:meth:`SplitPipeline.infer_stream` additionally *overlaps* the stages:
a double-buffered server worker consumes payloads while the edge computes
the next batch, and the accompanying :class:`ThroughputReport` schedules
the modelled transfer into the gap — so multi-batch wall time sits below
the serial sum of per-stage times, the way a real deployment's would.

Every runtime object here owns resources (planned executors hold worker
thread pools): call :meth:`close` — or use the objects as context
managers — to reclaim them.  The high-level entry point is
:func:`repro.serve.deploy`, which wires all of this from one declarative
:class:`~repro.serve.spec.DeploymentSpec`; prefer it over assembling
runtimes by hand.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..core.architecture import EdgeModel, MTLSplitNet, ServerModel
from ..deployment.channel import NetworkChannel
from ..deployment.wire import WireFormat, decode_tensor, encode_tensor
from ..nn.engine import PlanStats, PlannedExecutor, Unplannable, lower_session, run_passes
from ..nn.engine.ir import trace_shapes
from ..nn.tensor import Tensor
from .faults import (
    FALLBACK_MODES,
    ChannelDownError,
    FaultPlan,
    FaultStats,
    ResilientLink,
)

__all__ = [
    "InferenceTrace",
    "EdgeRuntime",
    "ServerRuntime",
    "SimulatedLink",
    "SplitPipeline",
    "ThroughputReport",
]


@dataclass
class InferenceTrace:
    """Timing and payload record for one pipeline invocation."""

    batch_size: int
    payload_bytes: int
    edge_seconds: float
    transfer_seconds: float
    server_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.edge_seconds + self.transfer_seconds + self.server_seconds


def _build_session(
    model, compiled, planned, num_workers, copy_outputs, reuse_buffers,
    optimize=True, max_cached_plans=8, compute="float32",
):
    """Shared session-selection ladder for the two runtimes."""
    if not compiled:
        return None
    if planned:  # planned=False wins even when num_workers was raised
        return model.compile_for_inference(
            plan=True, num_workers=num_workers, copy_outputs=copy_outputs,
            optimize=optimize, max_plans=max_cached_plans, compute=compute,
        )
    session = model.compile_for_inference()
    return session.enable_buffer_reuse() if reuse_buffers else session


class _RuntimeBase:
    """Lifecycle + plan introspection shared by the two stage runtimes.

    A runtime's session may hold a :class:`~repro.nn.engine.PlannedExecutor`
    whose worker pool keeps daemon threads alive; :meth:`close` releases
    them.  Runtimes are context managers so deployments can scope the
    resources: ``with EdgeRuntime(model) as edge: ...``.
    """

    session = None

    @property
    def compiled(self) -> bool:
        return self.session is not None

    @property
    def planned(self) -> bool:
        return isinstance(self.session, PlannedExecutor) and self.session.planned

    @property
    def plan_stats(self) -> Optional[PlanStats]:
        if isinstance(self.session, PlannedExecutor):
            return self.session.stats
        return None

    def plan_provenance(self, batch_shape: Optional[Tuple[int, ...]] = None) -> str:
        """Deterministic text describing exactly how this half computes.

        The plan half of the serve-cache provenance digest and the
        :mod:`repro.attest` plan digest: for the planned engine this is
        the *optimized plan IR* lowered for ``batch_shape`` — so an
        optimizer pass change or an ``optimize`` flag flip changes the
        digest and retires every cached entry — and for the un-planned
        modes it is the fused session description / an eval-mode marker.
        No arena is allocated: lowering + passes are pure IR work.
        """
        if isinstance(self.session, PlannedExecutor):
            header = (
                f"planned optimize={self.session.optimize} "
                f"compute={self.session.compute}"
            )
            if batch_shape is not None:
                try:
                    ir = lower_session(self.session.session, tuple(batch_shape))
                    if self.session.optimize:
                        # probe=False: the depthwise kernel probe picks
                        # winners by *timing*, and a digest must never
                        # depend on timing noise.  Provenance describes
                        # the deterministic pass pipeline only.
                        run_passes(ir, PlanStats(), probe=False)
                    return f"{header}\n{ir.describe()}"
                except Unplannable:
                    pass
            return f"{header}\n{self.session.session.describe()}"
        if self.session is not None:
            return f"compiled\n{self.session.describe()}"
        return "eval-mode"

    def close(self) -> None:
        """Release session resources (worker threads, cached plans)."""
        if self.session is not None:
            self.session.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


class EdgeRuntime(_RuntimeBase):
    """Runs the edge half and serialises ``Z_b`` for transmission.

    With ``compiled=True`` (the default) the half executes through a
    fused :class:`~repro.nn.fuse.InferenceSession`; with ``planned=True``
    (also the default) that session is additionally wrapped in a
    :class:`~repro.nn.engine.PlannedExecutor` — a static, arena-backed
    execution plan per batch shape, optionally batch-sharded across
    ``num_workers`` worker threads.  Executor-owned outputs are safe here
    because every ``Z_b`` is serialised to bytes before the next batch.
    """

    def __init__(
        self,
        model: EdgeModel,
        wire_format: WireFormat = WireFormat(),
        compiled: bool = True,
        planned: bool = True,
        num_workers: int = 1,
        optimize: bool = True,
        max_cached_plans: int = 8,
        compute: str = "float32",
    ):
        self.model = model
        self.wire_format = wire_format
        self.compute = compute
        self.model.eval()
        self.session = _build_session(
            model, compiled, planned, num_workers,
            copy_outputs=False, reuse_buffers=True,
            optimize=optimize, max_cached_plans=max_cached_plans,
            compute=compute,
        )

    def forward(self, images: np.ndarray) -> Tuple[np.ndarray, float]:
        """Return ``(Z_b, edge_compute_seconds)`` — the raw activation
        at the cut, *before* wire encoding.

        The returned array may be an executor-owned buffer that the next
        ``forward`` overwrites; callers that keep rows (the split-point
        feature cache) must copy them out before the next batch runs.
        """
        start = time.perf_counter()
        if self.session is not None:
            z_b = self.session.run(images)
        else:
            with nn.no_grad():
                z_b = self.model(Tensor(images)).data
        return z_b, time.perf_counter() - start

    def encode(self, z_b: np.ndarray) -> bytes:
        """Serialise an activation for the wire (the codec half of
        :meth:`infer`)."""
        return encode_tensor(z_b, self.wire_format)

    def output_shape(self, batch_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """The shape of ``Z_b`` for ``batch_shape`` inputs.

        Pure shape work for planned/compiled sessions (a dry trace on
        zeros, no arena); eval-mode falls back to one zeros forward.
        Used to lower the *server* half's plan for provenance digests
        without running real traffic.
        """
        if self.session is not None:
            session = (
                self.session.session
                if isinstance(self.session, PlannedExecutor)
                else self.session
            )
            _, out_shape = trace_shapes(session, tuple(batch_shape))
            return out_shape
        z_b, _ = self.forward(np.zeros(batch_shape, dtype=np.float32))
        return tuple(z_b.shape)

    def infer(self, images: np.ndarray) -> Tuple[bytes, float]:
        """Return ``(payload, edge_compute_seconds)`` for a batch."""
        start = time.perf_counter()
        z_b, _ = self.forward(images)
        payload = self.encode(z_b)
        return payload, time.perf_counter() - start



class ServerRuntime(_RuntimeBase):
    """Decodes ``Z_b`` payloads and runs the remaining stages + heads.

    The planned executor here copies its outputs out of the arena
    (``copy_outputs=True``): the per-task logits are handed back to the
    caller and must stay valid across batches.
    """

    def __init__(
        self,
        model: ServerModel,
        task_names: Tuple[str, ...],
        compiled: bool = True,
        planned: bool = True,
        num_workers: int = 1,
        optimize: bool = True,
        max_cached_plans: int = 8,
    ):
        self.model = model
        self.task_names = task_names
        self.model.eval()
        self.session = _build_session(
            model, compiled, planned, num_workers,
            copy_outputs=True, reuse_buffers=False,
            optimize=optimize, max_cached_plans=max_cached_plans,
        )

    def infer(self, payload: bytes) -> Tuple[Dict[str, np.ndarray], float]:
        """Return ``(per-task logits, server_compute_seconds)``."""
        start = time.perf_counter()
        z_flat = decode_tensor(payload)
        if self.session is not None:
            outputs = self.session.run(z_flat)
            logits = {name: outputs[name] for name in self.task_names}
        else:
            with nn.no_grad():
                outputs = self.model(Tensor(z_flat))
            logits = {name: outputs[name].data for name in self.task_names}
        return logits, time.perf_counter() - start


class SimulatedLink:
    """Accounts transfer time for payloads using a channel model.

    The transfer is simulated (no wall-clock sleep): the link records the
    modelled seconds so pipeline traces stay fast to produce while still
    reflecting the channel.
    """

    def __init__(self, channel: NetworkChannel):
        self.channel = channel
        self.bytes_sent = 0
        self.messages_sent = 0

    def send(self, payload: bytes) -> float:
        """Return the modelled transfer time for ``payload``."""
        self.bytes_sent += len(payload)
        self.messages_sent += 1
        return self.channel.transfer_seconds(len(payload))


@dataclass
class ThroughputReport:
    """Stage accounting for a multi-batch (optionally overlapped) run.

    ``serial_seconds`` is what strictly sequential edge → transfer →
    server execution would cost; ``pipelined_seconds`` is the makespan of
    the overlapped schedule (edge computes batch *i+1* while batch *i*
    is in flight and batch *i−1* is on the server); ``wall_seconds`` is
    the measured wall time of the double-buffered run (transfer is
    modelled, not slept, so it does not appear in the wall clock).

    When the runtimes execute through the planned engine, the report also
    carries the allocation accounting: ``num_workers`` (batch shards per
    stage), ``arena_bytes`` (preallocated buffer arenas across both
    stages) and ``steady_state_allocs`` (per-batch allocations planning
    could not remove — zero for fully planned programs) — plus the
    optimizer accounting: ``fused_steps`` (bias/act/affine/residual
    steps absorbed into GEMM/SpMM epilogues), ``elided_copies``
    (activations rewritten to run in place), ``aliased_views``
    (flatten/reshape certified zero-copy — equally true of the
    unoptimized binder) and ``spmm_row_blocks`` (L2-sized row blocks
    across blocked SpMMs).

    The robustness counters account what the run *survived* (see
    ``docs/robustness.md``): ``shed`` (requests rejected by admission
    control or dropped because the channel was down with no fallback),
    ``deadline_misses`` (requests expired in queue), ``retries``
    (split-channel re-sends), ``fallback_batches``/``fallback_seconds``
    (work executed degraded, off the split path), ``link_down_events``
    and ``recoveries`` (degradation state-machine transitions —
    a positive ``recoveries`` is the observable proof the pipeline
    returned to split mode), and ``server_crashes`` (server-stage crash
    windows absorbed by local fallback).
    """

    batches: int
    images: int
    wall_seconds: float
    edge_seconds: float
    transfer_seconds: float
    server_seconds: float
    pipelined_seconds: float
    num_workers: int = 1
    arena_bytes: int = 0
    steady_state_allocs: int = 0
    fused_steps: int = 0
    elided_copies: int = 0
    aliased_views: int = 0
    spmm_row_blocks: int = 0
    shed: int = 0
    deadline_misses: int = 0
    retries: int = 0
    fallback_batches: int = 0
    fallback_seconds: float = 0.0
    link_down_events: int = 0
    recoveries: int = 0
    server_crashes: int = 0
    # Serve-cache accounting, per tier (all zero without a CachePolicy;
    # see repro.serve.cache and docs/caching.md).  Hits/misses/evictions
    # are deltas for the run that produced this report; *_bytes is the
    # tier's occupancy gauge when the report was cut.
    response_hits: int = 0
    response_misses: int = 0
    response_evictions: int = 0
    response_bytes: int = 0
    feature_hits: int = 0
    feature_misses: int = 0
    feature_evictions: int = 0
    feature_bytes: int = 0
    # Cluster accounting (all zero for single-process deployments; see
    # repro.serve.cluster): how many worker processes served the run and
    # what the supervisor had to absorb while it ran.
    replicas: int = 1
    worker_crashes: int = 0
    worker_restarts: int = 0
    failovers: int = 0
    # Provenance stamps (see repro.attest and docs/benchmarking.md):
    # SHA-256 of the deployment spec and of the optimized plan-IR text,
    # so any perf artifact built from this report is traceable to exact
    # numerics.  Empty when the deployment has no stable provenance
    # (in-memory models) or the report predates stamping.
    spec_digest: str = ""
    plan_digest: str = ""

    @property
    def serial_seconds(self) -> float:
        return self.edge_seconds + self.transfer_seconds + self.server_seconds

    @property
    def offered(self) -> int:
        """Images offered to the run: completed + shed + expired."""
        return self.images + self.shed + self.deadline_misses

    @property
    def shed_rate(self) -> float:
        """Fraction of offered images rejected by admission control or
        dropped for lack of a fallback path."""
        return self.shed / self.offered if self.offered else 0.0

    @property
    def batches_per_second(self) -> float:
        return self.batches / self.pipelined_seconds if self.pipelined_seconds else 0.0

    @property
    def images_per_second(self) -> float:
        return self.images / self.pipelined_seconds if self.pipelined_seconds else 0.0

    @property
    def overlap_speedup(self) -> float:
        """Serial time over pipelined makespan (>1 when overlap helps)."""
        return self.serial_seconds / self.pipelined_seconds if self.pipelined_seconds else 1.0

    @property
    def stage_utilisation(self) -> Dict[str, float]:
        """Fraction of the pipelined makespan each stage is busy."""
        if not self.pipelined_seconds:
            return {"edge": 0.0, "transfer": 0.0, "server": 0.0}
        return {
            "edge": self.edge_seconds / self.pipelined_seconds,
            "transfer": self.transfer_seconds / self.pipelined_seconds,
            "server": self.server_seconds / self.pipelined_seconds,
        }

    @property
    def critical_stage(self) -> str:
        """The stage the pipeline is bound by (highest busy time)."""
        busy = {
            "edge": self.edge_seconds,
            "transfer": self.transfer_seconds,
            "server": self.server_seconds,
        }
        return max(busy, key=busy.get)

    @classmethod
    def from_stage_times(
        cls,
        batch_sizes: Sequence[int],
        edge: Sequence[float],
        transfer: Sequence[float],
        server: Sequence[float],
        wall_seconds: float,
        num_workers: int = 1,
        arena_bytes: int = 0,
        steady_state_allocs: int = 0,
        fused_steps: int = 0,
        elided_copies: int = 0,
        aliased_views: int = 0,
        spmm_row_blocks: int = 0,
        shed: int = 0,
        deadline_misses: int = 0,
        retries: int = 0,
        fallback_batches: int = 0,
        fallback_seconds: float = 0.0,
        link_down_events: int = 0,
        recoveries: int = 0,
        server_crashes: int = 0,
        **counters: object,
    ) -> "ThroughputReport":
        """Build a report, scheduling the three stages as a pipeline.

        Each stage processes batches in order and holds one batch at a
        time; batch *i* enters a stage once both the previous stage has
        produced it and the stage finished batch *i−1*.  Extra keyword
        ``counters`` set further report fields by name (e.g. the
        per-tier cache counters).
        """
        edge_done = transfer_done = server_done = 0.0
        for e, t, s in zip(edge, transfer, server):
            edge_done = edge_done + e
            transfer_done = max(edge_done, transfer_done) + t
            server_done = max(transfer_done, server_done) + s
        return cls(
            batches=len(batch_sizes),
            images=int(sum(batch_sizes)),
            wall_seconds=wall_seconds,
            edge_seconds=float(sum(edge)),
            transfer_seconds=float(sum(transfer)),
            server_seconds=float(sum(server)),
            pipelined_seconds=server_done,
            num_workers=num_workers,
            arena_bytes=arena_bytes,
            steady_state_allocs=steady_state_allocs,
            fused_steps=fused_steps,
            elided_copies=elided_copies,
            aliased_views=aliased_views,
            spmm_row_blocks=spmm_row_blocks,
            shed=shed,
            deadline_misses=deadline_misses,
            retries=retries,
            fallback_batches=fallback_batches,
            fallback_seconds=fallback_seconds,
            link_down_events=link_down_events,
            recoveries=recoveries,
            server_crashes=server_crashes,
            **counters,
        )

    @classmethod
    def aggregate(
        cls,
        per_replica: Sequence["ThroughputReport"],
        wall_seconds: float,
        **overrides,
    ) -> "ThroughputReport":
        """Merge per-replica reports into one cluster-wide report.

        Counts and busy seconds sum across replicas; the cluster's
        ``pipelined_seconds`` is the shared wall clock (replicas run
        concurrently, so summing their makespans would be dishonest).
        ``overrides`` patch cluster-level fields (``replicas``,
        ``worker_crashes``, ``shed``, ...) the workers cannot see.

        The merge is *field-driven*, not a hand-maintained list: numeric
        counters sum, string stamps (the spec/plan provenance digests)
        keep their unanimous value and clear to ``""`` when replicas
        disagree, and fields added later aggregate without edits here —
        a worker's counter can never be silently dropped on the way up.
        """
        special = {"wall_seconds", "pipelined_seconds", "num_workers", "replicas"}
        merged_values = {}
        for spec in dataclasses.fields(cls):
            if spec.name in special:
                continue
            values = [getattr(r, spec.name) for r in per_replica]
            if not values:
                merged_values[spec.name] = (
                    spec.default if spec.default is not dataclasses.MISSING else 0
                )
            elif isinstance(values[0], str):
                merged_values[spec.name] = (
                    values[0] if all(v == values[0] for v in values) else ""
                )
            else:
                merged_values[spec.name] = sum(values)
        merged = cls(
            wall_seconds=wall_seconds,
            pipelined_seconds=wall_seconds,
            num_workers=max((r.num_workers for r in per_replica), default=1),
            replicas=len(per_replica),
            **merged_values,
        )
        for name, value in overrides.items():
            if not hasattr(merged, name):
                raise TypeError(f"ThroughputReport has no field {name!r}")
            setattr(merged, name, value)
        return merged


class SplitPipeline:
    """End-to-end MTL-Split deployment: edge → link → server.

    Build one with :meth:`from_net`; call :meth:`infer` per batch (or
    :meth:`infer_stream` for overlapped multi-batch execution) and read
    the accumulated :attr:`traces`.  The pipeline owns its runtimes'
    resources: :meth:`close` (or exiting the pipeline's context) reclaims
    the planned executors' worker threads.

    With a :class:`~repro.serve.faults.FaultPlan` attached the pipeline
    becomes overload/fault-aware: sends go through a
    :class:`~repro.serve.faults.ResilientLink` (bounded retries,
    exponential backoff), and when the link is declared down the pipeline
    *degrades* instead of failing — ``fallback="edge"`` executes both
    halves locally (results bit-identical to the split path, since the
    same sessions and wire codec run), ``fallback="cloud"`` ships the raw
    input over the wire, ``fallback="none"`` sheds.  While degraded,
    every ``probe_every``-th request first probes the channel; a
    successful probe restores split mode.  All of it is visible in the
    :class:`ThroughputReport` robustness counters.
    """

    #: Trace retention cap.  The serving front-end keeps one pipeline
    #: open indefinitely and every ``infer`` appends a trace; without a
    #: bound the list grows with request count forever.  Oldest traces
    #: are dropped past the cap; set to ``None`` (class or instance) for
    #: offline analysis runs that want every trace.
    MAX_TRACES: Optional[int] = 100_000

    def __init__(
        self,
        edge: EdgeRuntime,
        link: SimulatedLink,
        server: ServerRuntime,
        faults: Optional[FaultPlan] = None,
        fallback: str = "edge",
        max_retries: int = 2,
        retry_backoff_s: float = 0.01,
        probe_every: int = 8,
    ):
        if fallback not in FALLBACK_MODES:
            raise ValueError(
                f"fallback must be one of {FALLBACK_MODES}, got {fallback!r}"
            )
        if not isinstance(probe_every, int) or probe_every < 1:
            raise ValueError(f"probe_every must be a positive int, got {probe_every!r}")
        self.edge = edge
        self.link = link
        self.server = server
        self.resilient = ResilientLink(
            link, plan=faults, max_retries=max_retries,
            backoff_seconds=retry_backoff_s,
        )
        self.fallback = fallback
        self.probe_every = probe_every
        # Optional split-point FeatureCache (repro.serve.cache), attached
        # by the Deployment after it computes the provenance digest.  Set,
        # the split path memoizes per-row edge activations at the cut;
        # None keeps the pre-cache behaviour byte-for-byte.
        self.feature_cache = None
        self.fallback_batches = 0
        self.fallback_seconds = 0.0
        self._down_requests = 0  # requests seen since the last probe
        self._server_calls = 0   # server-stage invocation index (crash windows)
        self.traces: List[InferenceTrace] = []

    @property
    def fault_stats(self) -> FaultStats:
        """The resilient link's lifetime fault counters."""
        return self.resilient.stats

    @property
    def degraded(self) -> bool:
        """Whether the pipeline is currently off the split path."""
        return self.resilient.is_down

    def _record_trace(self, trace: InferenceTrace) -> None:
        self.traces.append(trace)
        cap = self.MAX_TRACES
        if cap is not None and len(self.traces) > cap:
            del self.traces[: len(self.traces) - cap]

    @classmethod
    def from_net(
        cls,
        net: MTLSplitNet,
        channel: NetworkChannel,
        split_index: Optional[int] = None,
        input_size: int = 32,
        wire_format: WireFormat = WireFormat(),
        compiled: bool = True,
        planned: bool = True,
        num_workers: int = 1,
        optimize: bool = True,
        max_cached_plans: int = 8,
        faults: Optional[FaultPlan] = None,
        fallback: str = "edge",
        max_retries: int = 2,
        retry_backoff_s: float = 0.01,
        probe_every: int = 8,
        compute: str = "float32",
    ) -> "SplitPipeline":
        """Split ``net`` and wire the halves through a simulated channel.

        ``planned`` runs both halves through the arena-backed execution
        engine; ``num_workers`` shards each stage's batch across that
        many worker threads; ``optimize`` runs the plan-IR optimizer
        passes and ``max_cached_plans`` bounds each stage's per-shape
        plan cache (see :mod:`repro.nn.engine`).  ``faults`` attaches a
        deterministic :class:`~repro.serve.faults.FaultPlan` to the wire;
        ``fallback``/``max_retries``/``retry_backoff_s``/``probe_every``
        configure the degradation state machine (class docstring).
        ``compute="quant8"`` runs the *edge* half in the int8 tier (the
        server half always stays float32 — see ``DeploymentSpec``).
        """
        edge_model, server_model = net.split(split_index, input_size=input_size)
        return cls(
            EdgeRuntime(
                edge_model, wire_format, compiled=compiled,
                planned=planned, num_workers=num_workers,
                optimize=optimize, max_cached_plans=max_cached_plans,
                compute=compute,
            ),
            SimulatedLink(channel),
            ServerRuntime(
                server_model, net.task_names, compiled=compiled,
                planned=planned, num_workers=num_workers,
                optimize=optimize, max_cached_plans=max_cached_plans,
            ),
            faults=faults,
            fallback=fallback,
            max_retries=max_retries,
            retry_backoff_s=retry_backoff_s,
            probe_every=probe_every,
        )

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Release both stages' executor resources (idempotent)."""
        self.edge.close()
        self.server.close()

    def __enter__(self) -> "SplitPipeline":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def _plan_accounting(self) -> Dict[str, int]:
        """Engine accounting (workers, arena, allocs, optimizer) per stage."""
        totals = {
            "num_workers": 1, "arena_bytes": 0, "steady_state_allocs": 0,
            "fused_steps": 0, "elided_copies": 0, "aliased_views": 0,
            "spmm_row_blocks": 0,
        }
        for runtime in (self.edge, self.server):
            stats = getattr(runtime, "plan_stats", None)
            if stats is not None:
                totals["num_workers"] = max(totals["num_workers"], stats.num_workers)
                totals["arena_bytes"] += stats.arena_bytes
                totals["steady_state_allocs"] += stats.steady_state_allocs
                totals["fused_steps"] += stats.fused_steps
                totals["elided_copies"] += stats.elided_copies
                totals["aliased_views"] += stats.aliased_views
                totals["spmm_row_blocks"] += stats.spmm_row_blocks
        return totals

    def warmup(self, images: np.ndarray) -> "SplitPipeline":
        """Prime both halves (kernel auto-tuning, contraction plans).

        Runs one untraced end-to-end pass so that serving-time traces
        measure steady-state latency, the way a deployed engine would be
        exercised before accepting traffic.  The link is not charged.
        """
        payload, _ = self.edge.infer(images)
        self.server.infer(payload)
        return self

    def _edge_payload(self, images: np.ndarray) -> Tuple[bytes, float]:
        """The edge stage, through the split-point feature cache if one
        is attached.

        Per-row memoization at the cut: each image row is digested, hit
        rows reuse their cached activation, miss rows run the edge half
        as one sub-batch and populate the cache, and the reassembled
        ``Z_b`` (original row order) is encoded **once** as a whole
        batch — so the wire codec sees exactly the array a cache-less
        run would encode, and ``quant8``'s per-batch quantisation stays
        consistent.  A fully-hit batch skips edge compute entirely and
        pays only the codec here (+ wire + server head downstream).
        """
        cache = self.feature_cache
        if cache is None:
            return self.edge.infer(images)
        start = time.perf_counter()
        keys = [cache.key_for(row) for row in images]
        rows = [cache.get(key) for key in keys]
        miss = [index for index, row in enumerate(rows) if row is None]
        if miss:
            sub_batch = np.ascontiguousarray(images[np.asarray(miss)])
            z_miss, _ = self.edge.forward(sub_batch)
            for sub_row, index in enumerate(miss):
                # put() returns the frozen copy — essential here, since
                # z_miss is an executor-owned buffer the next forward()
                # overwrites.
                rows[index] = cache.put(keys[index], z_miss[sub_row])
        z_b = np.stack(rows)
        payload = self.edge.encode(z_b)
        return payload, time.perf_counter() - start

    def _feature_counters(self) -> Optional[Tuple[int, int, int]]:
        """Snapshot (hits, misses, evictions) for per-run report deltas."""
        cache = self.feature_cache
        if cache is None:
            return None
        stats = cache.stats
        return (stats.hits, stats.misses, stats.lru_evictions + stats.ttl_evictions)

    def _feature_accounting(
        self, before: Optional[Tuple[int, int, int]]
    ) -> Dict[str, int]:
        """Report fields for the feature tier since ``before``."""
        if before is None:
            return {}
        stats = self.feature_cache.stats
        return {
            "feature_hits": stats.hits - before[0],
            "feature_misses": stats.misses - before[1],
            "feature_evictions": (
                stats.lru_evictions + stats.ttl_evictions - before[2]
            ),
            "feature_bytes": stats.bytes_used,
        }

    def infer(self, images: np.ndarray) -> Dict[str, np.ndarray]:
        """Run one batch through the full deployment and record a trace.

        With the link declared down, every ``probe_every``-th request
        probes for recovery first; until a probe succeeds, requests take
        the fallback path (or raise :class:`ChannelDownError` for
        ``fallback="none"`` — the caller sheds them).
        """
        if self.resilient.is_down:
            self._down_requests += 1
            if self._down_requests >= self.probe_every:
                self._down_requests = 0
                self.resilient.probe()
            if self.resilient.is_down:
                return self._infer_fallback(images)
        payload, edge_s = self._edge_payload(images)
        try:
            transfer_s = self.resilient.send(payload)
        except ChannelDownError:
            self._down_requests = 0
            return self._infer_fallback(images, payload=payload, edge_seconds=edge_s)
        call_index = self._server_calls
        self._server_calls += 1
        plan = self.resilient.plan
        if plan is not None and plan.server_crashes(call_index):
            self.resilient.stats.server_crashes += 1
            return self._infer_fallback(
                images, payload=payload, edge_seconds=edge_s,
                transfer_seconds=transfer_s, cause="server stage crashed",
            )
        logits, server_s = self.server.infer(payload)
        self._record_trace(
            InferenceTrace(
                batch_size=images.shape[0],
                payload_bytes=len(payload),
                edge_seconds=edge_s,
                transfer_seconds=transfer_s,
                server_seconds=server_s,
            )
        )
        return logits

    def _infer_fallback(
        self,
        images: np.ndarray,
        payload: Optional[bytes] = None,
        edge_seconds: float = 0.0,
        transfer_seconds: float = 0.0,
        cause: str = "link down",
    ) -> Dict[str, np.ndarray]:
        """Execute one batch off the split path, per the fallback mode.

        ``fallback="edge"`` runs both halves locally through the *same*
        sessions and wire codec as the split path, so results are
        bit-identical to fault-free split execution; ``"cloud"`` first
        ships the raw input over the resilient link (which may itself
        fail while the link is down — those requests shed); ``"none"``
        raises so the caller sheds.  Wall time spent here accumulates in
        :attr:`fallback_seconds`.
        """
        if self.fallback == "none":
            raise ChannelDownError(
                f"split channel unavailable ({cause}) and fallback='none'; "
                "request shed"
            )
        start = time.perf_counter()
        if self.fallback == "cloud":
            raw = encode_tensor(
                np.asarray(images, dtype=np.float32), WireFormat("float32")
            )
            # May raise ChannelDownError during an outage: a cloud-only
            # fallback has nowhere to run without the wire.
            transfer_seconds += self.resilient.send(raw)
        if payload is None:
            payload, edge_s = self.edge.infer(images)
        else:
            edge_s = edge_seconds  # the split attempt already paid the edge stage
        logits, server_s = self.server.infer(payload)
        self.fallback_batches += 1
        self.fallback_seconds += time.perf_counter() - start
        self._record_trace(
            InferenceTrace(
                batch_size=images.shape[0],
                payload_bytes=len(payload),
                edge_seconds=edge_s,
                transfer_seconds=transfer_seconds,
                server_seconds=server_s,
            )
        )
        return logits

    def infer_stream(
        self, batches: Iterable[np.ndarray]
    ) -> Tuple[List[Dict[str, np.ndarray]], ThroughputReport]:
        """Run many batches with edge/server execution overlapped.

        A double-buffered worker thread runs the server half while the
        edge half computes the next batch, mirroring the deployment the
        paper targets (device and server are distinct machines).  Per
        batch, a normal :class:`InferenceTrace` is appended; the returned
        :class:`ThroughputReport` adds the schedule view — batches/s,
        stage utilisation and the critical stage.

        With an active fault plan the stream runs the *serial robust*
        path instead (each batch through :meth:`infer`, so retries,
        degradation and recovery all engage): batches shed by a downed
        channel come back as ``None`` results, and the report's
        robustness counters record what this run injected and survived.
        """
        batch_list = [np.asarray(b) for b in batches]
        n = len(batch_list)
        if n == 0:
            return [], ThroughputReport.from_stage_times([], [], [], [], 0.0)
        if self.resilient.plan is not None and not self.resilient.plan.is_null:
            return self._infer_stream_robust(batch_list)

        results: List[Optional[Dict[str, np.ndarray]]] = [None] * n
        server_times = [0.0] * n
        worker_error: List[BaseException] = []
        handoff: "queue.Queue" = queue.Queue(maxsize=2)  # double buffer

        def serve() -> None:
            try:
                while True:
                    item = handoff.get()
                    if item is None:
                        return
                    index, payload = item
                    results[index], server_times[index] = self.server.infer(payload)
            except BaseException as error:  # surfaced after join
                worker_error.append(error)
                while handoff.get() is not None:  # keep the producer unblocked
                    pass

        worker = threading.Thread(target=serve, name="split-pipeline-server")
        edge_times: List[float] = []
        transfer_times: List[float] = []
        payload_sizes: List[int] = []
        cache_before = self._feature_counters()
        start = time.perf_counter()
        worker.start()
        try:
            for index, images in enumerate(batch_list):
                payload, edge_s = self._edge_payload(images)
                edge_times.append(edge_s)
                transfer_times.append(self.link.send(payload))
                payload_sizes.append(len(payload))
                handoff.put((index, payload))
        finally:
            handoff.put(None)
            worker.join()
        wall = time.perf_counter() - start
        if worker_error:
            raise worker_error[0]

        batch_sizes = [b.shape[0] for b in batch_list]
        for i in range(n):
            self._record_trace(
                InferenceTrace(
                    batch_size=batch_sizes[i],
                    payload_bytes=payload_sizes[i],
                    edge_seconds=edge_times[i],
                    transfer_seconds=transfer_times[i],
                    server_seconds=server_times[i],
                )
            )
        report = ThroughputReport.from_stage_times(
            batch_sizes, edge_times, transfer_times, server_times, wall,
            **self._plan_accounting(),
            **self._feature_accounting(cache_before),
        )
        return list(results), report  # type: ignore[arg-type]

    def _infer_stream_robust(
        self, batch_list: List[np.ndarray]
    ) -> Tuple[List[Optional[Dict[str, np.ndarray]]], ThroughputReport]:
        """Serial multi-batch execution under an active fault plan.

        The overlapped schedule assumes every send succeeds; under
        faults, correctness (deterministic replay, ordered fallback
        decisions) matters more than overlap, so batches run serially
        through :meth:`infer` and the report carries the robustness
        deltas for exactly this run.
        """
        stats = self.resilient.stats
        retries0, downs0 = stats.retries, stats.down_events
        recoveries0, crashes0 = stats.recoveries, stats.server_crashes
        fb_batches0, fb_seconds0 = self.fallback_batches, self.fallback_seconds
        cache_before = self._feature_counters()

        results: List[Optional[Dict[str, np.ndarray]]] = []
        batch_sizes: List[int] = []
        edge_times: List[float] = []
        transfer_times: List[float] = []
        server_times: List[float] = []
        shed_images = 0
        start = time.perf_counter()
        for images in batch_list:
            try:
                results.append(self.infer(images))
            except ChannelDownError:
                results.append(None)
                shed_images += int(images.shape[0])
                continue
            trace = self.traces[-1]  # infer() always records one
            batch_sizes.append(trace.batch_size)
            edge_times.append(trace.edge_seconds)
            transfer_times.append(trace.transfer_seconds)
            server_times.append(trace.server_seconds)
        wall = time.perf_counter() - start

        report = ThroughputReport.from_stage_times(
            batch_sizes, edge_times, transfer_times, server_times, wall,
            **self._plan_accounting(),
            **self._feature_accounting(cache_before),
            shed=shed_images,
            retries=stats.retries - retries0,
            fallback_batches=self.fallback_batches - fb_batches0,
            fallback_seconds=self.fallback_seconds - fb_seconds0,
            link_down_events=stats.down_events - downs0,
            recoveries=stats.recoveries - recoveries0,
            server_crashes=stats.server_crashes - crashes0,
        )
        return results, report

    # ------------------------------------------------------------------
    def total_transfer_seconds(self) -> float:
        return sum(t.transfer_seconds for t in self.traces)

    def total_seconds(self) -> float:
        return sum(t.total_seconds for t in self.traces)

    def mean_payload_bytes(self) -> float:
        if not self.traces:
            return 0.0
        return sum(t.payload_bytes for t in self.traces) / len(self.traces)
