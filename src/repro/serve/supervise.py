"""Supervision for the replica cluster: heartbeats, restarts, health.

Production DAQ/serving systems survive dead workers because something is
*watching*: a supervisor that detects a silent readout unit and recovers
it without corrupting event accounting.  This module is that something
for :mod:`repro.serve.cluster`:

* :class:`ClusterStateMachine` — the SPLIT-style health automaton::

      HEALTHY --(replica dies)--> DEGRADED --(all restarted)--> HEALTHY
                                      |
                          (every replica permanently dead)
                                      v
                                    DEAD

  Every transition is recorded with a monotonic timestamp and a reason,
  so a chaos run can *prove* it degraded and recovered rather than
  asserting it vaguely.

* :class:`Supervisor` — a daemon thread that learns about dead replicas
  two ways: **immediately**, when a dispatcher's in-flight request hits
  a broken pipe and calls :meth:`Supervisor.notify_crash`; and **within
  one heartbeat interval**, when the periodic sweep finds a replica
  process no longer alive (the idle-kill case — nobody was talking to
  it when it died).  Detected deaths are restarted under exponential
  backoff (``backoff_base * 2**(restarts_of_this_slot - 1)``, capped),
  up to ``max_restarts`` per slot; a slot that exhausts its budget is
  abandoned and the cluster serves on with n-1 replicas.

The supervisor never touches request futures — conservation of the
request ledger is the router/batcher's job; the supervisor's contract is
narrower and stronger: every dead process is either restarted or
deliberately abandoned, and every transition is visible.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "CLUSTER_STATES",
    "ClusterStateMachine",
    "Supervisor",
    "SupervisorStats",
]

#: The health automaton's states: all replicas up / some down (serving
#: on the survivors) / none left (every slot dead or abandoned).
CLUSTER_STATES: Tuple[str, ...] = ("HEALTHY", "DEGRADED", "DEAD")


class ClusterStateMachine:
    """HEALTHY / DEGRADED / DEAD with a recorded transition history.

    Thread-safe; :meth:`observe` is called by the supervisor after every
    sweep and by the router after a crash notification, with the current
    (alive, total) replica census.
    """

    def __init__(self, replicas: int):
        self._lock = threading.Lock()
        self.replicas = replicas
        self.state = "HEALTHY"
        #: (monotonic seconds, from-state, to-state, reason) — the proof
        #: trail the chaos tests and the bench artifact read.
        self.transitions: List[Tuple[float, str, str, str]] = []

    def observe(self, alive: int, reason: str) -> Optional[Tuple[str, str]]:
        """Fold one census into the automaton.

        Returns ``(from, to)`` when the state changed, else ``None``.
        """
        if alive == self.replicas:
            target = "HEALTHY"
        elif alive > 0:
            target = "DEGRADED"
        else:
            target = "DEAD"
        with self._lock:
            if target == self.state:
                return None
            change = (self.state, target)
            self.transitions.append(
                (time.monotonic(), self.state, target, reason)
            )
            self.state = target
            return change

    @property
    def degraded_events(self) -> int:
        """Transitions out of HEALTHY (into DEGRADED or DEAD)."""
        with self._lock:
            return sum(1 for _, src, _dst, _ in self.transitions if src == "HEALTHY")

    @property
    def recoveries(self) -> int:
        """Transitions back to HEALTHY."""
        with self._lock:
            return sum(1 for _, _src, dst, _ in self.transitions if dst == "HEALTHY")

    def history(self) -> List[Dict[str, object]]:
        """JSON-ready transition log (relative timestamps)."""
        with self._lock:
            if not self.transitions:
                return []
            t0 = self.transitions[0][0]
            return [
                {
                    "t_s": round(ts - t0, 6),
                    "from": src,
                    "to": dst,
                    "reason": reason,
                }
                for ts, src, dst, reason in self.transitions
            ]

    def __repr__(self) -> str:
        return (
            f"ClusterStateMachine({self.state}, "
            f"{len(self.transitions)} transition(s))"
        )


@dataclass
class SupervisorStats:
    """Counters for one supervisor's lifetime."""

    heartbeats: int = 0           # periodic sweeps completed
    crashes_detected: int = 0     # dead replicas noticed (either path)
    crashes_by_heartbeat: int = 0  # ... found by the periodic sweep
    crashes_by_notification: int = 0  # ... reported by an in-flight failure
    restarts: int = 0             # replacements actually spawned
    slots_abandoned: int = 0      # slots past max_restarts, left down
    backoff_seconds: float = 0.0  # total restart delay charged
    restarts_per_slot: Dict[int, int] = field(default_factory=dict)


class Supervisor:
    """Watches replica processes; restarts the dead under backoff.

    Parameters
    ----------
    census:
        ``() -> List[Optional[WorkerHandle]]`` — slot-indexed snapshot of
        the cluster's replica pool (``None`` for a slot currently down).
    restart:
        ``(slot) -> bool`` — spawn and publish a replacement replica for
        ``slot``; returns False if the cluster is closing and the restart
        should be abandoned.  Called only from the supervisor thread.
    on_census:
        ``(alive_count, reason) -> None`` — state-machine hook invoked
        after every sweep and restart.
    heartbeat_s:
        Sweep period; an idle-killed replica is detected within one.
    backoff_base_s / backoff_cap_s:
        Exponential restart backoff: slot's ``k``-th restart waits
        ``min(base * 2**(k-1), cap)`` seconds before respawning.
    max_restarts:
        Per-slot restart budget; ``None`` is unlimited.
    """

    def __init__(
        self,
        census: Callable[[], List[Optional[object]]],
        restart: Callable[[int], bool],
        on_census: Callable[[int, str], None],
        heartbeat_s: float = 0.05,
        backoff_base_s: float = 0.01,
        backoff_cap_s: float = 1.0,
        max_restarts: Optional[int] = 5,
    ):
        if heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be > 0, got {heartbeat_s}")
        if backoff_base_s < 0 or backoff_cap_s < 0:
            raise ValueError("backoff seconds must be >= 0")
        if max_restarts is not None and max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0 or None, got {max_restarts}")
        self._census = census
        self._restart = restart
        self._on_census = on_census
        self.heartbeat_s = float(heartbeat_s)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.max_restarts = max_restarts
        self.stats = SupervisorStats()
        self._cond = threading.Condition()
        self._notified: set = set()   # slots reported dead by dispatchers
        self._known_dead: set = set()  # slots currently down (deduplicates)
        self._abandoned: set = set()   # slots past their restart budget
        self._stop = False
        self._thread = threading.Thread(
            target=self._watch_loop, name="repro-serve-supervisor", daemon=True
        )
        self._thread.start()

    # -- dispatcher-facing ---------------------------------------------
    def notify_crash(self, slot: int) -> None:
        """Report a replica found dead by an in-flight request.

        Wakes the supervisor immediately — failover must not wait for
        the next heartbeat.
        """
        with self._cond:
            self._notified.add(slot)
            self._cond.notify_all()

    @property
    def abandoned_slots(self) -> Tuple[int, ...]:
        with self._cond:
            return tuple(sorted(self._abandoned))

    # -- the watch loop ------------------------------------------------
    def _backoff_for(self, slot: int) -> float:
        count = self.stats.restarts_per_slot.get(slot, 0)
        if count == 0:
            return 0.0
        return min(self.backoff_base_s * (2 ** (count - 1)), self.backoff_cap_s)

    def _sweep(self) -> None:
        """One detection + recovery pass."""
        with self._cond:
            notified = set(self._notified)
            self._notified.clear()
        handles = self._census()
        dead: List[int] = []
        for slot, handle in enumerate(handles):
            if slot in self._abandoned:
                continue
            if handle is None or not handle.is_alive():
                if slot not in self._known_dead:
                    dead.append(slot)
        for slot in dead:
            self._known_dead.add(slot)
            self.stats.crashes_detected += 1
            if slot in notified:
                self.stats.crashes_by_notification += 1
            else:
                self.stats.crashes_by_heartbeat += 1
        if dead:
            alive = sum(
                1 for s, h in enumerate(self._census())
                if h is not None and s not in self._known_dead and h.is_alive()
            )
            self._on_census(alive, f"replica(s) {sorted(dead)} dead")
        # Recover: restart every known-dead slot, oldest first, under
        # backoff.  Serialised in this thread — concurrent restarts of
        # different slots would just contend for the same single core.
        for slot in sorted(self._known_dead):
            if self._stop:
                return
            budget = self.max_restarts
            used = self.stats.restarts_per_slot.get(slot, 0)
            if budget is not None and used >= budget:
                self._abandoned.add(slot)
                self._known_dead.discard(slot)
                self.stats.slots_abandoned += 1
                self._on_census(self._alive_count(), f"slot {slot} abandoned")
                continue
            delay = self._backoff_for(slot)
            if delay > 0:
                self.stats.backoff_seconds += delay
                with self._cond:
                    self._cond.wait(timeout=delay)
                if self._stop:
                    return
            if not self._restart(slot):
                return  # cluster is closing; leave the slot down
            self.stats.restarts += 1
            self.stats.restarts_per_slot[slot] = used + 1
            self._known_dead.discard(slot)
            self._on_census(self._alive_count(), f"slot {slot} restarted")

    def _alive_count(self) -> int:
        return sum(
            1 for s, h in enumerate(self._census())
            if h is not None and h.is_alive() and s not in self._known_dead
        )

    def _watch_loop(self) -> None:
        while True:
            with self._cond:
                if not self._stop and not self._notified:
                    self._cond.wait(timeout=self.heartbeat_s)
                if self._stop:
                    return
            self._sweep()
            self.stats.heartbeats += 1

    # -- lifecycle -----------------------------------------------------
    def stop(self, timeout: float = 5.0) -> None:
        """Stop watching (idempotent).  Does not touch the replicas —
        the cluster's drain owns their shutdown order."""
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        self._thread.join(timeout=timeout)

    def __repr__(self) -> str:
        return (
            f"Supervisor(heartbeat={self.heartbeat_s * 1e3:g} ms, "
            f"crashes={self.stats.crashes_detected}, "
            f"restarts={self.stats.restarts})"
        )
