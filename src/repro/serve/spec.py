"""Declarative deployment configuration for the split-computing system.

:class:`DeploymentSpec` is the single object that describes *everything*
about a split deployment — which model, where to cut it, how ``Z_b``
crosses the wire, what channel carries it, how the halves execute, and
how concurrent requests are batched.  It is frozen (safe to share across
threads), validates eagerly with precise error messages, and round-trips
through plain dicts and JSON so deployments can be driven from config
files::

    spec = DeploymentSpec(model="mobilenet_v3_tiny",
                          tasks=(("scale", 8), ("shape", 4)),
                          split_index="auto", wire="quant8",
                          channel="lte_uplink", num_workers=4)
    spec == DeploymentSpec.from_json(spec.to_json())   # True

``repro.deploy(spec)`` turns the description into a running
:class:`~repro.serve.deployment.Deployment`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Optional, Tuple, Union

from ..deployment.channel import NetworkChannel, get_channel
from ..deployment.device import Device, get_device
from ..deployment.wire import WireFormat
from ..models.registry import available_backbones
from .cache.policy import CachePolicy
from .faults import FALLBACK_MODES, FaultPlan

__all__ = ["DeploymentSpec", "SpecError"]

#: ``split_index`` sentinel: choose the latency-optimal cut with the
#: Neurosurgeon-style optimizer (:mod:`repro.deployment.optimizer`).
AUTO = "auto"


class SpecError(ValueError):
    """A :class:`DeploymentSpec` field failed validation.

    Subclasses ``ValueError`` so existing ``except ValueError`` call
    sites keep working; exists as its own type so config loaders can
    catch spec problems distinctly from other value errors.
    """


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


@dataclass(frozen=True)
class DeploymentSpec:
    """Frozen description of one split-computing deployment.

    Parameters
    ----------
    model:
        A backbone registry name (``"mobilenet_v3_tiny"``, ...) — the
        serialisable form — or an already-built
        :class:`~repro.core.architecture.MTLSplitNet` (e.g. a trained
        net; such specs cannot be serialised to dict/JSON).
    tasks:
        ``(name, num_classes)`` pairs for the task heads.  Required when
        ``model`` is a registry name; ignored (and left empty) when an
        ``MTLSplitNet`` is passed, whose heads are authoritative.
    input_size:
        Square input resolution the deployment is compiled for.
    split_index:
        Number of backbone stages kept on the edge: a positive int,
        ``None`` for the paper's default cut (whole backbone on the
        edge), or ``"auto"`` to let the latency optimizer choose for the
        configured device pair and channel.
    wire:
        ``Z_b`` encoding: ``"float32"``, ``"float16"`` or ``"quant8"``.
        Note that ``"quant8"`` quantises per *batch*, so dynamically
        batched ``submit()`` results may differ at the last bit from a
        sequential run.
    channel:
        A channel preset name (see
        :func:`repro.deployment.channel.available_channels`), a
        :class:`NetworkChannel`, or a dict of its fields.
    edge_device / server_device:
        Device preset names (see
        :func:`repro.deployment.device.available_devices`) or
        :class:`Device` objects; only consulted by the ``"auto"`` split
        optimizer.
    compiled / planned / num_workers:
        Execution-engine knobs, forwarded to the runtimes: fused
        compilation, arena planning, and batch shards per stage.
    optimize:
        Run the plan-IR optimizer passes (epilogue fusion, copy elision,
        kernel selection, blocked SpMM) on every execution plan.  On by
        default; ``False`` binds the straight-line reference lowering —
        the honest same-host baseline for benchmarks.
    max_cached_plans:
        Per-stage bound on the engine's per-batch-shape plan cache
        (LRU).  A long-running deployment serving many input shapes
        evicts least-recently-used plans past this limit instead of
        growing arena memory without bound.
    max_batch_size / max_queue_delay_ms:
        Dynamic-batching knobs for ``Deployment.submit``: a dispatched
        micro-batch closes when it reaches ``max_batch_size`` requests
        or the oldest request has waited ``max_queue_delay_ms``.
    max_queue_depth:
        Admission-control bound on queued ``submit`` requests; a submit
        against a full queue is shed with
        :class:`~repro.serve.batching.RejectedError`.  ``None`` keeps
        the queue unbounded.
    deadline_ms:
        Default per-request deadline for ``submit``; requests still
        queued past it are dropped with
        :class:`~repro.serve.batching.DeadlineExceededError` and the
        dispatcher fills micro-batches earliest-deadline-first.
        ``None`` disables deadlines.
    faults:
        Optional :class:`~repro.serve.faults.FaultPlan` (or its dict
        form) injected on the split channel — deterministic drop /
        delay / corruption plus link-down and server-crash windows.
    fallback:
        What to do when the link is declared down: ``"edge"`` runs both
        halves locally (graceful degradation, the default), ``"cloud"``
        ships the raw input over the (faulty) wire and runs everything
        server-side, ``"none"`` lets the failure propagate so callers
        shed.
    max_retries / retry_backoff_ms:
        Split-channel retry policy: re-send attempts after a transient
        wire fault, and the exponential-backoff base charged per retry
        (modelled time).
    probe_every:
        While degraded, attempt one link-recovery probe every this many
        requests; a successful probe restores split execution.
    cache:
        Optional :class:`~repro.serve.cache.CachePolicy` (or its dict /
        ``"tier:key=value,..."`` string form) enabling the serve-side
        caches: a content-addressed **response cache** answered at
        batcher admission, and/or a **split-point feature cache** that
        memoizes the edge activation at the cut (see
        ``docs/caching.md``).  Keys carry the spec + optimized-plan
        digests, so a respec or optimizer change never serves stale
        numerics.  ``None`` (the default) serves every request through
        the full pipeline, byte-for-byte the pre-cache behavior.
    replicas:
        Worker *processes* serving this deployment.  ``1`` (the default)
        keeps everything in-process; ``> 1`` makes :func:`repro.deploy`
        build a fault-tolerant :class:`~repro.serve.cluster
        .ClusterDeployment` — N forked workers, each owning its own
        plan cache and arena, behind a supervised front-end router (see
        :mod:`repro.serve.cluster`).  Multi-replica specs must use a
        registry-named model (workers rebuild the net from the spec).
    seed:
        RNG seed used when ``model`` is a registry name and the net is
        built (untrained) from scratch.
    compute:
        Numeric tier the *edge* half executes in.  ``"float32"`` (the
        default) is the reference tier; ``"quant8"`` overlays the planned
        edge engine with symmetric int8 operands and int32 accumulation
        (per-channel weight scales fixed at plan time, activation scales
        calibrated on the first served batch — see
        :mod:`repro.nn.engine.quant`).  The server half always runs
        float32: quantization is an edge-resource measure, and the head
        stack is where small numeric deltas would compound.  Distinct
        from ``wire``, which quantizes only the *transmitted* tensor.
        Requires ``planned=True``.
    """

    model: Union[str, Any]
    tasks: Tuple[Tuple[str, int], ...] = field(default=())
    input_size: int = 32
    split_index: Union[int, str, None] = None
    wire: str = "float32"
    channel: Union[str, NetworkChannel] = "gigabit_ethernet"
    edge_device: Union[str, Device] = "jetson_nano"
    server_device: Union[str, Device] = "rtx3090_server"
    compiled: bool = True
    planned: bool = True
    num_workers: int = 1
    optimize: bool = True
    max_cached_plans: int = 8
    max_batch_size: int = 8
    max_queue_delay_ms: float = 2.0
    max_queue_depth: Optional[int] = None
    deadline_ms: Optional[float] = None
    faults: Optional[FaultPlan] = None
    fallback: str = "edge"
    max_retries: int = 2
    retry_backoff_ms: float = 10.0
    probe_every: int = 8
    cache: Optional[CachePolicy] = None
    replicas: int = 1
    seed: int = 0
    compute: str = "float32"

    # ------------------------------------------------------------------
    # Validation / normalisation
    # ------------------------------------------------------------------
    def __post_init__(self):
        set_ = object.__setattr__  # frozen dataclass: normalise in place

        # -- model -----------------------------------------------------
        if isinstance(self.model, str):
            _check(
                self.model in available_backbones(),
                f"unknown backbone {self.model!r}; "
                f"available: {available_backbones()}",
            )
            tasks = tuple(
                (str(name), int(classes)) for name, classes in self.tasks
            )
            _check(
                len(tasks) > 0,
                "tasks must be non-empty when model is a registry name; "
                f"give (name, num_classes) pairs for {self.model!r}",
            )
            for name, classes in tasks:
                _check(
                    classes >= 1,
                    f"task {name!r} needs num_classes >= 1, got {classes}",
                )
            names = [name for name, _ in tasks]
            _check(
                len(set(names)) == len(names),
                f"task names must be unique, got {names}",
            )
            set_(self, "tasks", tasks)
        else:
            _check(
                hasattr(self.model, "split") and hasattr(self.model, "task_names"),
                "model must be a backbone registry name or an MTLSplitNet-like "
                f"module with .split() and .task_names, got {type(self.model).__name__}",
            )
            set_(self, "tasks", ())  # the module's heads are authoritative

        # -- geometry / cut --------------------------------------------
        _check(
            isinstance(self.input_size, int) and self.input_size >= 8,
            f"input_size must be an int >= 8, got {self.input_size!r}",
        )
        if self.split_index is not None and self.split_index != AUTO:
            _check(
                isinstance(self.split_index, int) and not isinstance(self.split_index, bool)
                and self.split_index >= 1,
                "split_index must be a positive int, None, or 'auto'; "
                f"got {self.split_index!r}",
            )

        # -- wire / channel / devices ----------------------------------
        if isinstance(self.wire, WireFormat):
            set_(self, "wire", self.wire.dtype)
        try:
            WireFormat(self.wire)
        except ValueError as error:
            raise SpecError(str(error)) from None
        _check(
            self.compute in ("float32", "quant8"),
            f"compute must be 'float32' or 'quant8', got {self.compute!r}",
        )
        _check(
            self.compute == "float32" or self.planned,
            "compute='quant8' requires the planned engine (planned=True)",
        )
        if isinstance(self.channel, dict):
            try:
                set_(self, "channel", NetworkChannel(**self.channel))
            except (TypeError, ValueError) as error:
                raise SpecError(f"bad channel description: {error}") from None
        elif isinstance(self.channel, str):
            try:
                get_channel(self.channel)
            except KeyError as error:
                raise SpecError(error.args[0]) from None
        else:
            _check(
                isinstance(self.channel, NetworkChannel),
                "channel must be a preset name, NetworkChannel or dict, "
                f"got {type(self.channel).__name__}",
            )
        for attr in ("edge_device", "server_device"):
            value = getattr(self, attr)
            if isinstance(value, str):
                try:
                    get_device(value)
                except KeyError as error:
                    raise SpecError(error.args[0]) from None
            else:
                _check(
                    isinstance(value, Device),
                    f"{attr} must be a preset name or Device, "
                    f"got {type(value).__name__}",
                )

        # -- engine / batching knobs -----------------------------------
        _check(
            isinstance(self.num_workers, int) and self.num_workers >= 1,
            f"num_workers must be a positive int, got {self.num_workers!r}",
        )
        _check(
            isinstance(self.max_cached_plans, int) and self.max_cached_plans >= 1,
            f"max_cached_plans must be a positive int, got {self.max_cached_plans!r}",
        )
        _check(
            isinstance(self.max_batch_size, int) and self.max_batch_size >= 1,
            f"max_batch_size must be a positive int, got {self.max_batch_size!r}",
        )
        _check(
            float(self.max_queue_delay_ms) >= 0.0,
            f"max_queue_delay_ms must be >= 0, got {self.max_queue_delay_ms!r}",
        )
        set_(self, "max_queue_delay_ms", float(self.max_queue_delay_ms))

        # -- overload / robustness knobs -------------------------------
        if self.max_queue_depth is not None:
            _check(
                isinstance(self.max_queue_depth, int)
                and not isinstance(self.max_queue_depth, bool)
                and self.max_queue_depth >= 1,
                f"max_queue_depth must be a positive int or None, "
                f"got {self.max_queue_depth!r}",
            )
        if self.deadline_ms is not None:
            _check(
                float(self.deadline_ms) > 0.0,
                f"deadline_ms must be > 0 or None, got {self.deadline_ms!r}",
            )
            set_(self, "deadline_ms", float(self.deadline_ms))
        if isinstance(self.faults, dict):
            try:
                set_(self, "faults", FaultPlan.from_dict(self.faults))
            except (TypeError, ValueError) as error:
                raise SpecError(f"bad fault plan: {error}") from None
        elif self.faults is not None:
            _check(
                isinstance(self.faults, FaultPlan),
                f"faults must be a FaultPlan, dict or None, "
                f"got {type(self.faults).__name__}",
            )
        _check(
            self.fallback in FALLBACK_MODES,
            f"fallback must be one of {FALLBACK_MODES}, got {self.fallback!r}",
        )
        _check(
            isinstance(self.max_retries, int)
            and not isinstance(self.max_retries, bool)
            and self.max_retries >= 0,
            f"max_retries must be an int >= 0, got {self.max_retries!r}",
        )
        _check(
            float(self.retry_backoff_ms) >= 0.0,
            f"retry_backoff_ms must be >= 0, got {self.retry_backoff_ms!r}",
        )
        set_(self, "retry_backoff_ms", float(self.retry_backoff_ms))
        _check(
            isinstance(self.probe_every, int)
            and not isinstance(self.probe_every, bool)
            and self.probe_every >= 1,
            f"probe_every must be a positive int, got {self.probe_every!r}",
        )
        if isinstance(self.cache, dict):
            try:
                set_(self, "cache", CachePolicy.from_dict(self.cache))
            except (TypeError, ValueError) as error:
                raise SpecError(f"bad cache policy: {error}") from None
        elif isinstance(self.cache, str):
            try:
                set_(self, "cache", CachePolicy.from_string(self.cache))
            except ValueError as error:
                raise SpecError(f"bad cache policy: {error}") from None
        elif self.cache is not None:
            _check(
                isinstance(self.cache, CachePolicy),
                f"cache must be a CachePolicy, dict, string or None, "
                f"got {type(self.cache).__name__}",
            )
        _check(
            isinstance(self.replicas, int)
            and not isinstance(self.replicas, bool)
            and self.replicas >= 1,
            f"replicas must be a positive int, got {self.replicas!r}",
        )
        if self.replicas > 1:
            _check(
                isinstance(self.model, str),
                "replicas > 1 needs a registry-named model (worker "
                "processes rebuild the net from the serialised spec); "
                "an in-memory net cannot cross the process boundary",
            )

    # ------------------------------------------------------------------
    # Resolution helpers (used by Deployment; cheap, allocate nothing big)
    # ------------------------------------------------------------------
    @property
    def auto_split(self) -> bool:
        return self.split_index == AUTO

    def wire_format(self) -> WireFormat:
        return WireFormat(self.wire)

    def resolve_channel(self) -> NetworkChannel:
        if isinstance(self.channel, str):
            return get_channel(self.channel)
        return self.channel

    def resolve_edge_device(self) -> Device:
        if isinstance(self.edge_device, str):
            return get_device(self.edge_device)
        return self.edge_device

    def resolve_server_device(self) -> Device:
        if isinstance(self.server_device, str):
            return get_device(self.server_device)
        return self.server_device

    def replace(self, **overrides) -> "DeploymentSpec":
        """A copy with ``overrides`` applied (re-validated)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON-types dict that :meth:`from_dict` inverts exactly.

        Raises :class:`SpecError` when the spec wraps an in-memory
        module: only registry-named models are serialisable (save the
        weights separately and name the backbone instead).
        """
        _check(
            isinstance(self.model, str),
            "only specs with a registry-named model serialise to dict/JSON; "
            f"this spec holds an in-memory {type(self.model).__name__} — "
            "name the backbone and load weights separately",
        )
        data: Dict[str, Any] = {
            "model": self.model,
            "tasks": [[name, classes] for name, classes in self.tasks],
            "input_size": self.input_size,
            "split_index": self.split_index,
            "wire": self.wire,
            "channel": self._channel_to_jsonable(),
            "edge_device": self._device_to_jsonable(self.edge_device),
            "server_device": self._device_to_jsonable(self.server_device),
            "compiled": self.compiled,
            "planned": self.planned,
            "num_workers": self.num_workers,
            "optimize": self.optimize,
            "max_cached_plans": self.max_cached_plans,
            "max_batch_size": self.max_batch_size,
            "max_queue_delay_ms": self.max_queue_delay_ms,
            "max_queue_depth": self.max_queue_depth,
            "deadline_ms": self.deadline_ms,
            "faults": self.faults.to_dict() if self.faults is not None else None,
            "fallback": self.fallback,
            "max_retries": self.max_retries,
            "retry_backoff_ms": self.retry_backoff_ms,
            "probe_every": self.probe_every,
            "cache": self.cache.to_dict() if self.cache is not None else None,
            "replicas": self.replicas,
            "seed": self.seed,
            "compute": self.compute,
        }
        return data

    def _channel_to_jsonable(self) -> Union[str, Dict[str, Any]]:
        # A NetworkChannel object serialises to its field dict (never to a
        # preset name, even when equal to one) so from_dict(to_dict(s)) == s.
        if isinstance(self.channel, str):
            return self.channel
        return asdict(self.channel)

    @staticmethod
    def _device_to_jsonable(device: Union[str, Device]) -> Union[str, Dict[str, Any]]:
        if isinstance(device, str):
            return device
        return asdict(device)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DeploymentSpec":
        """Inverse of :meth:`to_dict`; rejects unknown keys loudly."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        _check(
            not unknown,
            f"unknown DeploymentSpec keys {unknown}; known keys: {sorted(known)}",
        )
        payload = dict(data)
        if "tasks" in payload:
            try:
                payload["tasks"] = tuple(
                    (name, classes) for name, classes in payload["tasks"]
                )
            except (TypeError, ValueError):
                raise SpecError(
                    "tasks must be (name, num_classes) pairs, got "
                    f"{payload['tasks']!r}"
                ) from None
        for attr in ("edge_device", "server_device"):
            if isinstance(payload.get(attr), dict):
                try:
                    payload[attr] = Device(**payload[attr])
                except (TypeError, ValueError) as error:
                    raise SpecError(f"bad {attr} description: {error}") from None
        return cls(**payload)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DeploymentSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"invalid DeploymentSpec JSON: {error}") from None
        _check(isinstance(data, dict), "DeploymentSpec JSON must be an object")
        return cls.from_dict(data)

    def digest(self) -> str:
        """SHA-256 over the canonical (sorted-key) JSON serialisation.

        The spec half of the cache provenance key (the other half is the
        optimized plan-IR digest — see :mod:`repro.serve.cache`), and
        the same digest bench artifacts stamp for run provenance.  Only
        registry-named specs have one; in-memory models raise
        :class:`SpecError` like :meth:`to_dict` does.
        """
        return hashlib.sha256(self.to_json(indent=None).encode()).hexdigest()

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line human summary for CLI banners and logs."""
        model = self.model if isinstance(self.model, str) else type(self.model).__name__
        cut = self.split_index if self.split_index is not None else "backbone/heads"
        channel = (
            self.channel if isinstance(self.channel, str) else self.channel.name
        )
        cluster = f", replicas={self.replicas}" if self.replicas > 1 else ""
        tier = f", compute={self.compute}" if self.compute != "float32" else ""
        return (
            f"{model} @{self.input_size}px, split={cut}, wire={self.wire}{tier}, "
            f"channel={channel}, workers={self.num_workers}, "
            f"batch<= {self.max_batch_size} within {self.max_queue_delay_ms:g} ms"
            f"{cluster}"
        )
