"""Frozen, JSON-round-tripped cache configuration (:class:`CachePolicy`).

The policy rides on :class:`~repro.serve.spec.DeploymentSpec` the same
way :class:`~repro.data.streams.ArrivalSpec` rides on scenarios: a
frozen dataclass with eager validation, exact ``dict``/JSON round-trips
that reject unknown keys, and a compact ``tier:key=value,...`` string
form for the CLI (``repro serve --cache both:ttl=30``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional

__all__ = ["CACHE_TIERS", "CachePolicy"]

#: Tier selections :class:`CachePolicy` understands.  ``response``
#: caches final task outputs keyed on the input image; ``feature``
#: memoizes the edge activation at the split point; ``both`` runs the
#: two tiers stacked.
CACHE_TIERS = ("response", "feature", "both")

# Compact-string aliases: field name <-> short CLI key.
_SHORT = {
    "capacity_bytes": "capacity",
    "max_entries": "entries",
    "ttl_s": "ttl",
    "sweep_interval_s": "sweep",
    "enabled": "enabled",
}
_LONG = {short: name for name, short in _SHORT.items()}


@dataclass(frozen=True)
class CachePolicy:
    """Configuration for the serve-side cache tiers.

    Parameters
    ----------
    tier:
        Which tier(s) to run — ``"response"``, ``"feature"`` or
        ``"both"``.
    enabled:
        Master switch; a disabled policy behaves exactly like
        ``cache=None`` (useful for flipping caching off in a respec
        without losing the tuned budgets).
    capacity_bytes:
        Byte budget **per tier** for cached values (LRU evicts from the
        cold end when exceeded).
    max_entries:
        Entry-count budget per tier.
    ttl_s:
        Optional time-to-live in seconds.  Entries older than this are
        misses, and a background sweeper thread (named
        ``repro-serve-cache-*``, reclaimed by ``close()``) reaps them
        so expired bytes do not linger against the budget.
    sweep_interval_s:
        How often the sweeper wakes when ``ttl_s`` is set.
    """

    tier: str = "both"
    enabled: bool = True
    capacity_bytes: int = 64 * 1024 * 1024
    max_entries: int = 4096
    ttl_s: Optional[float] = None
    sweep_interval_s: float = 0.5

    def __post_init__(self):
        if self.tier not in CACHE_TIERS:
            raise ValueError(
                f"cache tier must be one of {CACHE_TIERS}, got {self.tier!r}"
            )
        object.__setattr__(self, "enabled", bool(self.enabled))
        object.__setattr__(self, "capacity_bytes", int(self.capacity_bytes))
        object.__setattr__(self, "max_entries", int(self.max_entries))
        if self.capacity_bytes < 1:
            raise ValueError(
                f"capacity_bytes must be >= 1, got {self.capacity_bytes}"
            )
        if self.max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {self.max_entries}")
        if self.ttl_s is not None:
            object.__setattr__(self, "ttl_s", float(self.ttl_s))
            if not self.ttl_s > 0:
                raise ValueError(f"ttl_s must be > 0 or None, got {self.ttl_s}")
        object.__setattr__(self, "sweep_interval_s", float(self.sweep_interval_s))
        if not self.sweep_interval_s > 0:
            raise ValueError(
                f"sweep_interval_s must be > 0, got {self.sweep_interval_s}"
            )

    @property
    def response_enabled(self) -> bool:
        return self.enabled and self.tier in ("response", "both")

    @property
    def feature_enabled(self) -> bool:
        return self.enabled and self.tier in ("feature", "both")

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CachePolicy":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown CachePolicy keys {unknown}; known keys: {sorted(known)}"
            )
        return cls(**dict(data))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CachePolicy":
        return cls.from_dict(json.loads(text))

    # -- CLI string form -----------------------------------------------
    def to_string(self) -> str:
        """Compact ``tier:key=value,...`` form (inverse of
        :meth:`from_string`); only non-default fields are listed."""
        default = CachePolicy(tier=self.tier)
        parts = []
        for f in fields(self):
            if f.name == "tier":
                continue
            value = getattr(self, f.name)
            if value != getattr(default, f.name):
                if f.name == "enabled":
                    rendered = str(int(value))
                else:
                    # repr() round-trips floats exactly (ArrivalSpec rule).
                    rendered = repr(value)
                parts.append(f"{_SHORT[f.name]}={rendered}")
        return self.tier + (":" + ",".join(parts) if parts else "")

    @classmethod
    def from_string(cls, text: str) -> "CachePolicy":
        """Parse ``"both"`` / ``"response:ttl=30,entries=512"``.

        The part before ``:`` is the tier; the rest is comma-separated
        ``key=value`` pairs using the short keys ``capacity`` (bytes),
        ``entries``, ``ttl`` (seconds), ``sweep`` and ``enabled`` (0/1).
        ``off`` is accepted as shorthand for a disabled default policy.
        """
        if not isinstance(text, str) or not text.strip():
            raise ValueError(f"cache policy must be a non-empty string, got {text!r}")
        text = text.strip()
        if text == "off":
            return cls(enabled=False)
        head, _, tail = text.partition(":")
        payload: Dict[str, Any] = {"tier": head.strip()}
        int_fields = {"capacity_bytes", "max_entries"}
        for part in filter(None, (p.strip() for p in tail.split(","))):
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(
                    f"cache policy parts must be key=value, got {part!r} in {text!r}"
                )
            key = _LONG.get(key.strip(), key.strip())
            try:
                if key == "enabled":
                    payload[key] = bool(int(value))
                elif key in int_fields:
                    payload[key] = int(value)
                else:
                    payload[key] = float(value)
            except ValueError:
                raise ValueError(
                    f"cache policy value for {key!r} must be numeric, got {value!r}"
                ) from None
        return cls.from_dict(payload)
