"""Content-addressed cache keys with plan/spec provenance.

Two deployments must never share a cache line unless they are guaranteed
to produce the same numerics.  Keys therefore have two halves:

* a **provenance digest** — SHA-256 over the deployment's serialised
  :class:`~repro.serve.spec.DeploymentSpec` *and* the optimized plan-IR
  description of the edge half, so an optimizer-pass change, a respec,
  or a different split point all key into disjoint namespaces; and
* a **tensor digest** — SHA-256 over the *canonicalized* input tensor:
  dtype tag + shape tag + C-contiguous bytes.

Canonicalization is what makes the tensor digest an equivalence class
over values rather than memory layouts: a Fortran-ordered copy, a
negative-stride view and a freshly materialised C array of the same
values hash identically, while arrays that merely share raw bytes but
differ in dtype or shape (``float32`` vs ``int32``, ``(2, 3)`` vs
``(3, 2)``) can never collide — the header is part of the hash, with an
unambiguous separator so no (header, payload) pair aliases another.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = [
    "canonical_bytes",
    "combine_digests",
    "provenance_digest",
    "tensor_digest",
]


def canonical_bytes(array: np.ndarray) -> bytes:
    """The canonical byte serialization of a tensor.

    A self-delimiting header — ``dtype.str`` (which pins byte order:
    ``'<f4'``) plus the shape tuple, length-prefixed so dtype and shape
    can never bleed into the payload — followed by the element bytes in
    C order.  Non-contiguous inputs (F-ordered, negative-stride, sliced
    views) are materialised with :func:`np.ascontiguousarray` first, so
    equal-valued arrays serialize identically regardless of memory
    layout, while arrays that merely share raw bytes but differ in dtype
    or shape can never alias.

    This is the single canonical form shared by the serve cache keys and
    the :mod:`repro.attest` golden-digest registry.
    """
    array = np.asarray(array)
    if not array.flags.c_contiguous:
        array = np.ascontiguousarray(array)
    header = f"{array.dtype.str}|{array.shape!r}|".encode("ascii")
    return len(header).to_bytes(4, "little") + header + array.tobytes()


def tensor_digest(array: np.ndarray) -> str:
    """SHA-256 hex digest of :func:`canonical_bytes` of a tensor."""
    return hashlib.sha256(canonical_bytes(array)).hexdigest()


def provenance_digest(parts: Iterable[str]) -> str:
    """SHA-256 over an ordered sequence of provenance strings.

    Callers pass the serialised spec, the optimized plan-IR description
    and any extra discriminators (e.g. a per-process token for in-memory
    models that have no stable serialised form).  Each part is length-
    prefixed so concatenation ambiguity cannot produce collisions.
    """
    hasher = hashlib.sha256()
    for part in parts:
        data = part.encode("utf-8")
        hasher.update(len(data).to_bytes(8, "little"))
        hasher.update(data)
    return hasher.hexdigest()


def combine_digests(provenance: str, tensor: str) -> str:
    """One cache key: provenance namespace + content address.

    The full provenance digest is folded to 16 hex chars (64 bits) —
    enough to keep namespaces disjoint — and kept visible in the key so
    tests and logs can see *why* two keys differ.
    """
    return f"{provenance[:16]}:{tensor}"
