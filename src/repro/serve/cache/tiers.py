"""The two serve-side cache tiers and their owning :class:`ServeCache`.

* :class:`ResponseCache` — keyed on the canonicalized *input image*,
  stores the final per-task output dict.  A hit skips the entire
  pipeline: no queue depth, no edge compute, no wire, no server.
* :class:`FeatureCache` — keyed on the same input digest, stores the
  raw float32 edge activation **at the split point** (pre-codec).  A
  hit skips edge compute but still pays the wire codec + server head —
  exactly the cut the paper's split placement optimises around.

Both tiers prefix keys with the deployment's provenance digest
(serialised spec + optimized plan-IR description), so optimizer changes
or respecs land in fresh namespaces instead of serving stale numerics.

Stored arrays are **defensive copies marked read-only**: engine buffers
are reused across runs, and clients must not be able to poison cached
values by mutating a returned array.  Consequently cache hits hand back
read-only views (zero-copy on the hot path).

When the policy sets a TTL, :class:`ServeCache` runs one daemon sweeper
thread (named ``repro-serve-cache-sweeper``) over both tiers so expired
entries stop holding bytes against the budget between lookups;
``close()`` reclaims it, and the serve-suite thread-leak checks assert
no ``repro-serve-cache-*`` thread survives a closed deployment.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Mapping, Optional

import numpy as np

from .keys import combine_digests, tensor_digest
from .policy import CachePolicy
from .store import ByteLRUStore, CacheStats

__all__ = ["FeatureCache", "ResponseCache", "ServeCache"]

#: Rough per-entry bookkeeping charge (key string + OrderedDict slot),
#: so byte accounting cannot be gamed to zero by many tiny entries.
_ENTRY_OVERHEAD_BYTES = 128


def _freeze(array: np.ndarray) -> np.ndarray:
    """A contiguous, read-only copy safe to share across clients."""
    frozen = np.ascontiguousarray(array).copy()
    frozen.setflags(write=False)
    return frozen


class _TierCache:
    """Shared plumbing: provenance-prefixed keys over a byte-LRU store."""

    def __init__(
        self,
        policy: CachePolicy,
        provenance: str,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy
        self.provenance = provenance
        self.store = ByteLRUStore(
            capacity_bytes=policy.capacity_bytes,
            max_entries=policy.max_entries,
            ttl_s=policy.ttl_s,
            clock=clock,
        )

    @property
    def stats(self) -> CacheStats:
        return self.store.stats

    def key_for(self, array: np.ndarray) -> str:
        return combine_digests(self.provenance, tensor_digest(array))

    def sweep(self) -> int:
        return self.store.sweep()

    def clear(self) -> None:
        self.store.clear()


class ResponseCache(_TierCache):
    """input-image digest -> final result (``{task: output_row}`` dict
    for multi-task deployments, a bare output row otherwise)."""

    @staticmethod
    def _copy_out(value):
        # Shallow-copy dicts so callers can add/remove keys freely; the
        # arrays themselves stay shared and read-only.
        return dict(value) if isinstance(value, dict) else value

    def get(self, key: str):
        value = self.store.get(key)
        return self._copy_out(value) if value is not None else None

    def peek(self, key: str):
        value = self.store.peek(key)
        return self._copy_out(value) if value is not None else None

    def put(self, key: str, result):
        """Store a defensive read-only copy; returns the frozen value
        (for handing to single-flight followers), or ``None`` if the
        store rejected it as oversize."""
        if isinstance(result, Mapping):
            frozen: object = {
                name: _freeze(np.asarray(row)) for name, row in result.items()
            }
            payload_bytes = sum(a.nbytes for a in frozen.values())
        else:
            frozen = _freeze(np.asarray(result))
            payload_bytes = frozen.nbytes
        nbytes = _ENTRY_OVERHEAD_BYTES + payload_bytes
        if not self.store.put(key, frozen, nbytes):
            return None
        return self._copy_out(frozen)

    def note_coalesced(self) -> None:
        with self.stats._lock:
            self.stats.coalesced += 1


class FeatureCache(_TierCache):
    """input-image digest -> raw float32 edge activation at the cut."""

    def get(self, key: str) -> Optional[np.ndarray]:
        return self.store.get(key)

    def put(self, key: str, row: np.ndarray) -> Optional[np.ndarray]:
        frozen = _freeze(np.asarray(row, dtype=np.float32))
        nbytes = _ENTRY_OVERHEAD_BYTES + frozen.nbytes
        if not self.store.put(key, frozen, nbytes):
            return frozen  # too big to cache, but still usable this once
        return frozen


class ServeCache:
    """Owns the configured tier(s), their budgets and the TTL sweeper."""

    def __init__(
        self,
        policy: CachePolicy,
        provenance: str,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy
        self.provenance = provenance
        self.response: Optional[ResponseCache] = (
            ResponseCache(policy, provenance, clock)
            if policy.response_enabled
            else None
        )
        self.feature: Optional[FeatureCache] = (
            FeatureCache(policy, provenance, clock)
            if policy.feature_enabled
            else None
        )
        self._closed = threading.Event()
        self._sweeper: Optional[threading.Thread] = None
        if policy.ttl_s is not None and (self.response or self.feature):
            self._sweeper = threading.Thread(
                target=self._sweep_loop,
                name="repro-serve-cache-sweeper",
                daemon=True,
            )
            self._sweeper.start()

    def _sweep_loop(self) -> None:
        while not self._closed.wait(self.policy.sweep_interval_s):
            for tier in (self.response, self.feature):
                if tier is not None:
                    tier.sweep()

    def stats(self) -> Dict[str, Dict[str, int]]:
        """``{"response": {...}, "feature": {...}}`` counter snapshots
        (only the tiers the policy enables appear)."""
        out: Dict[str, Dict[str, int]] = {}
        if self.response is not None:
            out["response"] = self.response.stats.snapshot()
        if self.feature is not None:
            out["feature"] = self.feature.stats.snapshot()
        return out

    def close(self) -> None:
        """Idempotent: stop the sweeper thread and drop every entry."""
        self._closed.set()
        if self._sweeper is not None:
            self._sweeper.join(timeout=10.0)
            self._sweeper = None
        for tier in (self.response, self.feature):
            if tier is not None:
                tier.clear()

    def __enter__(self) -> "ServeCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
