"""``repro.serve.cache`` — content-addressed serving caches.

Production traffic is repetitive; this package converts that repetition
into near-zero edge cost with two cooperating tiers (see
``docs/caching.md``):

* a **response cache** returning final task outputs straight from the
  batcher's admission path (a hit never occupies queue depth), and
* a **split-point feature cache** memoizing the edge activation at the
  cut, so a hit pays only wire codec + server head.

Keys are SHA-256 digests of the canonicalized input tensor, prefixed by
a provenance digest of the deployment spec + optimized plan IR — an
optimizer change or respec can never serve stale numerics.  Configure
via :class:`CachePolicy` on the ``DeploymentSpec`` (``cache=...``) or
``repro serve --cache both:ttl=30``.
"""

from .keys import combine_digests, provenance_digest, tensor_digest
from .policy import CACHE_TIERS, CachePolicy
from .store import ByteLRUStore, CacheStats
from .tiers import FeatureCache, ResponseCache, ServeCache

__all__ = [
    "CACHE_TIERS",
    "ByteLRUStore",
    "CachePolicy",
    "CacheStats",
    "FeatureCache",
    "ResponseCache",
    "ServeCache",
    "combine_digests",
    "provenance_digest",
    "tensor_digest",
]
