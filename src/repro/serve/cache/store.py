"""Thread-safe byte-accounted LRU + TTL store for cached tensors.

The eviction discipline reuses the engine's ``max_cached_plans``
pattern (:class:`~repro.nn.engine.executor.PlannedExecutor`): an
``OrderedDict`` where a hit is ``move_to_end`` and eviction is
``popitem(last=False)`` — but accounts **bytes**, not just entries,
because cached responses vary in size with the task-head fan-out and
cached split-point activations with the cut position.

Time never comes from ``time.time()`` directly: the store takes an
injectable monotonic ``clock`` so TTL tests drive expiry with a fake
clock instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, Optional

__all__ = ["ByteLRUStore", "CacheStats"]


@dataclass
class CacheStats:
    """Counters for one cache tier.  All monotonic except the gauges
    ``entries`` / ``bytes_used``, which track current occupancy."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Requests that joined an in-flight computation of the same key
    #: (single-flight followers) — counted separately from plain hits
    #: because no stored value existed yet when they were admitted.
    coalesced: int = 0
    lru_evictions: int = 0
    ttl_evictions: int = 0
    #: Values larger than the whole byte budget, never admitted.
    oversize_rejections: int = 0
    entries: int = 0
    bytes_used: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def evictions(self) -> int:
        return self.lru_evictions + self.ttl_evictions

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy (safe to serialise / diff across a run)."""
        with self._lock:
            data = {
                f.name: getattr(self, f.name)
                for f in fields(self)
                if not f.name.startswith("_")
            }
        data["evictions"] = data["lru_evictions"] + data["ttl_evictions"]
        return data


class _Entry:
    __slots__ = ("value", "nbytes", "expires_at")

    def __init__(self, value: Any, nbytes: int, expires_at: Optional[float]):
        self.value = value
        self.nbytes = nbytes
        self.expires_at = expires_at


class ByteLRUStore:
    """An LRU mapping of ``key -> value`` under byte and entry budgets.

    ``get``/``put``/``sweep`` are safe to call from any thread (the
    batcher's dispatchers, the split pipeline and the TTL sweeper all
    touch the same store).  Values are opaque here; the tier wrappers in
    :mod:`repro.serve.cache.tiers` decide how to copy and size them.
    """

    def __init__(
        self,
        capacity_bytes: int,
        max_entries: int,
        ttl_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity_bytes < 1:
            raise ValueError(f"capacity_bytes must be >= 1, got {capacity_bytes}")
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.capacity_bytes = int(capacity_bytes)
        self.max_entries = int(max_entries)
        self.ttl_s = ttl_s
        self.clock = clock
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._bytes = 0

    # -- internal (lock held) ------------------------------------------
    def _drop(self, key: str, entry: _Entry, *, reason: str) -> None:
        del self._entries[key]
        self._bytes -= entry.nbytes
        if reason == "ttl":
            self.stats.ttl_evictions += 1
        elif reason == "lru":
            self.stats.lru_evictions += 1
        self._sync_gauges()

    def _sync_gauges(self) -> None:
        self.stats.entries = len(self._entries)
        self.stats.bytes_used = self._bytes

    # -- public API ----------------------------------------------------
    def get(self, key: str) -> Optional[Any]:
        """The cached value, or ``None`` on miss/expiry.  A hit promotes
        the entry to most-recently-used."""
        now = self.clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if entry.expires_at is not None and now >= entry.expires_at:
                self._drop(key, entry, reason="ttl")
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.value

    def peek(self, key: str) -> Optional[Any]:
        """Like :meth:`get` but with no stats or LRU side effects (used
        when handing a just-stored value to single-flight followers)."""
        now = self.clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            if entry.expires_at is not None and now >= entry.expires_at:
                return None
            return entry.value

    def put(self, key: str, value: Any, nbytes: int) -> bool:
        """Insert (or refresh) ``key``; returns False if the value alone
        exceeds the byte budget and was rejected outright."""
        nbytes = int(nbytes)
        now = self.clock()
        expires_at = None if self.ttl_s is None else now + self.ttl_s
        with self._lock:
            if nbytes > self.capacity_bytes:
                self.stats.oversize_rejections += 1
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = _Entry(value, nbytes, expires_at)
            self._bytes += nbytes
            self.stats.stores += 1
            while self._bytes > self.capacity_bytes or (
                len(self._entries) > self.max_entries
            ):
                cold_key, cold = next(iter(self._entries.items()))
                self._drop(cold_key, cold, reason="lru")
            self._sync_gauges()
        return True

    def sweep(self) -> int:
        """Evict every expired entry; returns how many were reaped."""
        if self.ttl_s is None:
            return 0
        now = self.clock()
        reaped = 0
        with self._lock:
            for key in [
                k
                for k, e in self._entries.items()
                if e.expires_at is not None and now >= e.expires_at
            ]:
                self._drop(key, self._entries[key], reason="ttl")
                reaped += 1
        return reaped

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._sync_gauges()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes
