"""``repro.serve`` — the declarative deployment and serving API.

The one-stop surface over the split-computing stack: declare a
deployment as a frozen, JSON-round-trippable
:class:`~repro.serve.spec.DeploymentSpec`, bring it to life with
:func:`~repro.serve.deployment.deploy`, and serve through three surfaces
— synchronous batches (``infer``), overlapped batch streams
(``stream``), and asynchronous single-image requests (``submit``) that a
dynamic micro-batching dispatcher coalesces into engine-sized batches::

    import repro

    spec = repro.DeploymentSpec(
        model="mobilenet_v3_tiny",
        tasks=(("scale", 8), ("shape", 4)),
        split_index="auto",          # latency-optimal cut
        wire="quant8",               # 4x smaller Z_b payloads
        num_workers=4,               # batch shards per stage
    )
    with repro.deploy(spec) as dep:
        futures = [dep.submit(image) for image in images]   # many clients
        results = [f.result() for f in futures]             # batched under the hood

The execution layer (:mod:`repro.serve.runtime`) and the batcher
(:mod:`repro.serve.batching`) are public too, for code that needs the
pieces; :mod:`repro.serve.bench` drives synthetic concurrent load
(closed-loop) and open-loop overload sweeps for benchmarking.  The
robustness layer (see ``docs/robustness.md``) lives in
:mod:`repro.serve.faults` (deterministic :class:`FaultPlan` wire-fault
injection, the retrying/degrading :class:`ResilientLink`) and in the
batcher's overload semantics (:class:`RejectedError` admission control,
:class:`DeadlineExceededError` queue deadlines).  Scale-out and process
fault-tolerance live in :mod:`repro.serve.cluster`: ``replicas > 1`` on
the spec (or :func:`deploy_cluster`) runs N supervised worker processes
behind the same ``submit`` surface, with seeded SIGKILL chaos
(:class:`WorkerFaultPlan`), in-flight failover and graceful drain.
Content-addressed caching lives in :mod:`repro.serve.cache`: a
``cache=`` policy on the spec adds a response tier (input digest →
final output, resolved at admission before any queueing) and a
split-point feature tier (input digest → edge activation at the cut),
both keyed under a provenance digest of the spec + optimized plan IR —
see ``docs/caching.md``.  The pre-``serve`` classes under
``repro.deployment``
(``EdgeRuntime``/``ServerRuntime``/``SplitPipeline``) remain as
deprecated wrappers over this package.
"""

from .batching import (
    BatchingStats,
    DeadlineExceededError,
    DynamicBatcher,
    RejectedError,
    ShutdownError,
)
from .bench import (
    ClientLoadResult,
    OverloadPoint,
    render_cache_bench,
    render_cluster_bench,
    render_overload_bench,
    render_serve_bench,
    run_cache_bench,
    run_cluster_bench,
    run_overload_bench,
    run_serve_bench,
)
from .cache import (
    ByteLRUStore,
    CachePolicy,
    CacheStats,
    FeatureCache,
    ResponseCache,
    ServeCache,
    tensor_digest,
)
from .cluster import (
    ClusterDeployment,
    ClusterReport,
    ClusterSpec,
    NoHealthyReplicaError,
    ReplicaManager,
    deploy_cluster,
)
from .deployment import Deployment, deploy
from .faults import (
    FALLBACK_MODES,
    ChannelDownError,
    ChannelFaultError,
    FaultPlan,
    FaultStats,
    ResilientLink,
    ServerCrashError,
    WorkerFaultPlan,
)
from .supervise import CLUSTER_STATES, ClusterStateMachine, Supervisor
from .workers import WorkerDiedError
from .runtime import (
    EdgeRuntime,
    InferenceTrace,
    ServerRuntime,
    SimulatedLink,
    SplitPipeline,
    ThroughputReport,
)
from .spec import DeploymentSpec, SpecError

__all__ = [
    "CLUSTER_STATES",
    "FALLBACK_MODES",
    "BatchingStats",
    "ByteLRUStore",
    "CachePolicy",
    "CacheStats",
    "ChannelDownError",
    "ChannelFaultError",
    "ClientLoadResult",
    "ClusterDeployment",
    "ClusterReport",
    "ClusterSpec",
    "ClusterStateMachine",
    "DeadlineExceededError",
    "Deployment",
    "DeploymentSpec",
    "DynamicBatcher",
    "EdgeRuntime",
    "FaultPlan",
    "FaultStats",
    "FeatureCache",
    "InferenceTrace",
    "NoHealthyReplicaError",
    "OverloadPoint",
    "RejectedError",
    "ReplicaManager",
    "ResilientLink",
    "ResponseCache",
    "ServeCache",
    "ServerCrashError",
    "ServerRuntime",
    "ShutdownError",
    "SimulatedLink",
    "SpecError",
    "SplitPipeline",
    "Supervisor",
    "ThroughputReport",
    "WorkerDiedError",
    "WorkerFaultPlan",
    "deploy",
    "deploy_cluster",
    "render_cache_bench",
    "render_cluster_bench",
    "render_overload_bench",
    "render_serve_bench",
    "run_cache_bench",
    "run_cluster_bench",
    "run_overload_bench",
    "run_serve_bench",
    "tensor_digest",
]
