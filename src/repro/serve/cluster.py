"""Fault-tolerant multi-process replica cluster for the serving tier.

A single-process :class:`~repro.serve.deployment.Deployment` is bounded
by one interpreter: one plan cache, one arena, one GIL.  This module
scales *out* instead of up — and, more importantly for a deployment the
paper's DAQ setting cares about, survives its own workers dying:

* N **replica processes** (:mod:`repro.serve.workers`), each owning a
  full single-process deployment — its own plan cache and arena — built
  from the same serialised :class:`~repro.serve.spec.DeploymentSpec`.
* A **front-end router**: the existing
  :class:`~repro.serve.batching.DynamicBatcher` run with ``dispatchers =
  replicas``, so admission control, deadlines, EDF dispatch and the
  conservation ledger all keep working unchanged.  Each dispatcher
  leases a healthy replica, ships its micro-batch over the pipe (framed
  by the ``repro.serve`` wire codec), and slices rows back onto futures.
* A **supervisor** (:mod:`repro.serve.supervise`): heartbeat sweeps plus
  immediate crash notifications from in-flight pipe failures; dead
  replicas restart under exponential backoff, the cluster's
  HEALTHY → DEGRADED → HEALTHY state machine records every transition.
* **Crash injection**: a seeded, digest-stamped
  :class:`~repro.serve.faults.WorkerFaultPlan` SIGKILLs the leased
  replica *between* dispatch and reply at scheduled micro-batch indices
  — a true in-flight crash, replayable bit-for-bit from ``(seed,
  index)`` like PR 6's channel ``FaultPlan``.
* **Failover**: a dispatcher that sees :class:`WorkerDiedError` notifies
  the supervisor and re-dispatches the same micro-batch to another
  healthy replica.  Inference is idempotent and every worker rebuilds an
  identical net from ``(registry name, seed)``, so retried results match
  fault-free results to 1e-6 — the chaos tests assert it.
* **Graceful drain**: :meth:`ClusterDeployment.close` stops admissions,
  flushes the queue through still-alive replicas, fails anything
  stranded with the named
  :class:`~repro.serve.batching.ShutdownError`, stops the supervisor,
  then stops every worker (ask → join → escalate) — no stranded future,
  no orphan process.

The conservation law survives all of it: ``submitted == shed +
cache_hits + requests`` and ``requests == completed + expired + failed
+ cancelled`` hold across crashes and restarts because futures only
ever resolve through the batcher.  When the deployment spec enables a
response cache the router owns it (one shared hit set across every
replica); the feature tier, if enabled, lives inside each worker's own
pipeline.

Entry points: ``repro.deploy(spec)`` with ``spec.replicas > 1``,
:func:`deploy_cluster`, or ``repro serve --replicas N`` on the CLI.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field, fields
from dataclasses import replace as replace_dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .batching import BatchingStats, DynamicBatcher, ShutdownError
from .cache import ServeCache, provenance_digest
from .faults import WorkerFaultPlan
from .runtime import ThroughputReport
from .spec import DeploymentSpec, SpecError
from .supervise import ClusterStateMachine, Supervisor
from .workers import WorkerDiedError, WorkerHandle, spawn_worker

__all__ = [
    "ClusterDeployment",
    "ClusterReport",
    "ClusterSpec",
    "NoHealthyReplicaError",
    "ReplicaManager",
    "deploy_cluster",
]


class NoHealthyReplicaError(RuntimeError):
    """No replica could be leased before the timeout.

    Raised to the request's future (counted ``failed`` in the
    conservation ledger) when every slot is dead or abandoned — the
    cluster is DEAD but the ledger still balances.
    """


@dataclass(frozen=True)
class ClusterSpec:
    """Frozen description of one replica cluster.

    Parameters
    ----------
    deployment:
        The per-replica :class:`~repro.serve.spec.DeploymentSpec` (or its
        dict form).  Must use a registry-named model — worker processes
        rebuild the net from the serialised spec.
    replicas:
        Worker process count; ``None`` takes ``deployment.replicas``.
        A 1-replica cluster is valid (it is the honest overhead baseline
        the cluster bench measures against).
    heartbeat_ms:
        Supervisor sweep period; an idle-killed replica is detected
        within one heartbeat.
    backoff_base_ms / backoff_cap_ms:
        Exponential restart backoff per slot:
        ``min(base * 2**(k-1), cap)`` before the ``k``-th restart.
    max_restarts:
        Per-slot restart budget before the slot is abandoned and the
        cluster serves on with n-1 replicas; ``None`` is unlimited.
    worker_faults:
        Optional :class:`~repro.serve.faults.WorkerFaultPlan` (or its
        dict / compact-string form): seeded, digest-stamped SIGKILL
        schedule over micro-batch dispatch indices.
    request_timeout_s:
        Per-dispatch reply timeout; a replica that blows it is treated
        as dead (and killed, so it can never send a stale reply).
    lease_timeout_s:
        How long a dispatcher waits for a healthy replica before failing
        the batch with :class:`NoHealthyReplicaError`.
    drain_timeout_s:
        Graceful-drain budget for :meth:`ClusterDeployment.close`.
    """

    deployment: DeploymentSpec
    replicas: Optional[int] = None
    heartbeat_ms: float = 50.0
    backoff_base_ms: float = 10.0
    backoff_cap_ms: float = 1000.0
    max_restarts: Optional[int] = 5
    worker_faults: Optional[WorkerFaultPlan] = None
    request_timeout_s: float = 60.0
    lease_timeout_s: float = 30.0
    drain_timeout_s: float = 10.0

    def __post_init__(self):
        set_ = object.__setattr__
        if isinstance(self.deployment, dict):
            set_(self, "deployment", DeploymentSpec.from_dict(self.deployment))
        if not isinstance(self.deployment, DeploymentSpec):
            raise SpecError(
                "deployment must be a DeploymentSpec or its dict form, "
                f"got {type(self.deployment).__name__}"
            )
        self.deployment.to_dict()  # serialisable or fail now, not at spawn
        if self.replicas is None:
            set_(self, "replicas", self.deployment.replicas)
        if (
            not isinstance(self.replicas, int)
            or isinstance(self.replicas, bool)
            or self.replicas < 1
        ):
            raise SpecError(
                f"replicas must be a positive int, got {self.replicas!r}"
            )
        for name in ("heartbeat_ms", "request_timeout_s", "lease_timeout_s",
                     "drain_timeout_s"):
            value = float(getattr(self, name))
            if value <= 0:
                raise SpecError(f"{name} must be > 0, got {value!r}")
            set_(self, name, value)
        for name in ("backoff_base_ms", "backoff_cap_ms"):
            value = float(getattr(self, name))
            if value < 0:
                raise SpecError(f"{name} must be >= 0, got {value!r}")
            set_(self, name, value)
        if self.max_restarts is not None and (
            not isinstance(self.max_restarts, int)
            or isinstance(self.max_restarts, bool)
            or self.max_restarts < 0
        ):
            raise SpecError(
                f"max_restarts must be an int >= 0 or None, got {self.max_restarts!r}"
            )
        if isinstance(self.worker_faults, dict):
            set_(self, "worker_faults", WorkerFaultPlan.from_dict(self.worker_faults))
        elif isinstance(self.worker_faults, str):
            set_(self, "worker_faults", WorkerFaultPlan.from_string(self.worker_faults))
        elif self.worker_faults is not None and not isinstance(
            self.worker_faults, WorkerFaultPlan
        ):
            raise SpecError(
                "worker_faults must be a WorkerFaultPlan, dict, compact "
                f"string or None, got {type(self.worker_faults).__name__}"
            )

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "deployment": self.deployment.to_dict(),
            "replicas": self.replicas,
            "heartbeat_ms": self.heartbeat_ms,
            "backoff_base_ms": self.backoff_base_ms,
            "backoff_cap_ms": self.backoff_cap_ms,
            "max_restarts": self.max_restarts,
            "worker_faults": (
                self.worker_faults.to_dict()
                if self.worker_faults is not None else None
            ),
            "request_timeout_s": self.request_timeout_s,
            "lease_timeout_s": self.lease_timeout_s,
            "drain_timeout_s": self.drain_timeout_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClusterSpec":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(
                f"unknown ClusterSpec keys {unknown}; known keys: {sorted(known)}"
            )
        return cls(**data)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ClusterSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"invalid ClusterSpec JSON: {error}") from None
        if not isinstance(data, dict):
            raise SpecError("ClusterSpec JSON must be an object")
        return cls.from_dict(data)

    def describe(self) -> str:
        faults = (
            f", worker_faults={self.worker_faults.to_string()}"
            if self.worker_faults is not None and not self.worker_faults.is_null
            else ""
        )
        return (
            f"{self.replicas} replica(s) x [{self.deployment.describe()}], "
            f"heartbeat={self.heartbeat_ms:g} ms, "
            f"max_restarts={self.max_restarts}{faults}"
        )


@dataclass
class ClusterStats:
    """Router-side counters for one cluster's lifetime."""

    dispatches: int = 0        # micro-batches routed (including retries)
    kills_injected: int = 0    # WorkerFaultPlan SIGKILLs actually delivered
    failovers: int = 0         # micro-batches re-dispatched after a dead replica
    failover_failures: int = 0  # batches failed after exhausting retries
    dispatches_per_slot: Dict[int, int] = field(default_factory=dict)


@dataclass
class ClusterReport:
    """One cluster-wide accounting snapshot (see :meth:`ClusterDeployment.report`)."""

    aggregate: ThroughputReport
    per_replica: List[Dict[str, Any]]
    state: str
    state_history: List[Dict[str, Any]]
    supervisor: Dict[str, Any]
    batching: Dict[str, Any]
    queue_depth: int
    kills_injected: int
    worker_fault_digest: Optional[str]

    def to_dict(self) -> Dict[str, Any]:
        from dataclasses import asdict

        return {
            "aggregate": asdict(self.aggregate),
            "per_replica": self.per_replica,
            "state": self.state,
            "state_history": self.state_history,
            "supervisor": self.supervisor,
            "batching": self.batching,
            "queue_depth": self.queue_depth,
            "kills_injected": self.kills_injected,
            "worker_fault_digest": self.worker_fault_digest,
        }


#: Latency samples retained per replica slot for p50/p95 (oldest dropped).
_MAX_LATENCY_SAMPLES = 10_000


class ClusterDeployment:
    """N supervised replica processes behind one batching front-end.

    Same serving surface as a single-process
    :class:`~repro.serve.deployment.Deployment` — ``submit`` /
    ``infer`` / ``close`` / context manager — plus the cluster view:
    :meth:`report`, :attr:`state`, :attr:`supervisor`.

    Thread-safety: ``submit``/``infer`` may be called from any thread;
    ``close`` is idempotent and safe under concurrent callers.
    """

    def __init__(self, spec: ClusterSpec):
        self.spec = spec
        self._payload = spec.deployment.to_dict()
        self.stats = ClusterStats()
        self.state_machine = ClusterStateMachine(spec.replicas)

        # The replica pool: slot-indexed handles, exclusive leases.  One
        # condition guards handles + leases + the closing flags so a
        # restart can never publish into a closing cluster or reap a
        # handle a dispatcher still holds.
        self._pool = threading.Condition()
        self._leased: set = set()
        # Slots a dispatcher saw die.  ``Process.is_alive()`` can lag a
        # SIGKILL by a scheduling quantum, so without this mark rapid
        # failover retries re-lease the dying replica and burn every
        # attempt inside the race window.  A slot stays suspect until
        # the supervisor publishes its replacement handle.
        self._suspect: set = set()
        self._lease_rr = 0          # rotating search offset (load balance)
        self._stopping = False      # drain started: no kills, no restarts
        self._stopped = False       # leases refused: replicas going down
        self._closed = False
        self._close_lock = threading.Lock()
        self._metrics = threading.Lock()  # stats + latencies + fault index
        self._dispatch_index = 0    # WorkerFaultPlan index space
        self._latencies_ms: Dict[int, List[float]] = {
            slot: [] for slot in range(spec.replicas)
        }
        self._started_at = time.perf_counter()

        self._handles: List[Optional[WorkerHandle]] = [
            spawn_worker(self._payload, slot) for slot in range(spec.replicas)
        ]
        self.supervisor = Supervisor(
            census=self._census,
            restart=self._restart_slot,
            on_census=self._observe,
            heartbeat_s=spec.heartbeat_ms / 1e3,
            backoff_base_s=spec.backoff_base_ms / 1e3,
            backoff_cap_s=spec.backoff_cap_ms / 1e3,
            max_restarts=spec.max_restarts,
        )
        dspec = spec.deployment
        # The response cache lives ROUTER-side, in front of the batcher,
        # so all replicas share one hit set (a duplicate served by
        # replica 0 is a hit even when replica 1 would have computed it).
        # The split-point feature tier cannot be shared across process
        # boundaries; each worker's own Deployment builds it from the
        # same spec'd policy.  Provenance here is the spec digest (every
        # replica rebuilds the identical net/plan from it).
        self.cache: Optional[ServeCache] = None
        if dspec.cache is not None and dspec.cache.response_enabled:
            self.cache = ServeCache(
                replace_dataclass(dspec.cache, tier="response"),
                provenance_digest(
                    [f"spec:{dspec.digest()}", "cluster-router"]
                ),
            )
        self._batcher = DynamicBatcher(
            self._route_batch,
            max_batch_size=dspec.max_batch_size,
            max_queue_delay_ms=dspec.max_queue_delay_ms,
            max_queue_depth=dspec.max_queue_depth,
            default_deadline_ms=dspec.deadline_ms,
            dispatchers=spec.replicas,
            name=f"repro-serve-batcher [cluster {dspec.describe()}]",
            response_cache=(
                self.cache.response if self.cache is not None else None
            ),
        )

    # ------------------------------------------------------------------
    # Pool: census, leasing, restart
    # ------------------------------------------------------------------
    def _census(self) -> List[Optional[WorkerHandle]]:
        with self._pool:
            return list(self._handles)

    def _observe(self, alive: int, reason: str) -> None:
        self.state_machine.observe(alive, reason)

    def _lease(self, timeout: Optional[float] = None) -> Tuple[int, WorkerHandle]:
        """Claim exclusive use of a healthy replica (rotating preference)."""
        if timeout is None:
            timeout = self.spec.lease_timeout_s
        with self._pool:
            if self._stopping:  # drain: bounded patience, not 30 s
                timeout = min(timeout, 2.0)
            deadline = time.monotonic() + timeout
            while True:
                if self._stopped:
                    raise ShutdownError("cluster is closed; no replicas to lease")
                n = len(self._handles)
                for probe in range(n):
                    slot = (self._lease_rr + probe) % n
                    handle = self._handles[slot]
                    if (
                        handle is not None
                        and slot not in self._leased
                        and slot not in self._suspect
                        and handle.is_alive()
                    ):
                        self._leased.add(slot)
                        self._lease_rr = (slot + 1) % n
                        return slot, handle
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise NoHealthyReplicaError(
                        f"no healthy replica leasable within {timeout:g}s "
                        f"(state={self.state_machine.state}, "
                        f"abandoned={self.supervisor.abandoned_slots})"
                    )
                # Bounded wait: replica death produces no notification, so
                # re-scan is_alive() periodically even without one.
                self._pool.wait(timeout=min(remaining, 0.05))

    def _lease_slot(
        self, slot: int, timeout: float
    ) -> Optional[WorkerHandle]:
        """Claim one *specific* slot (stats/warmup); None if dead/busy."""
        with self._pool:
            deadline = time.monotonic() + timeout
            while True:
                if self._stopped:
                    return None
                handle = self._handles[slot]
                if (
                    handle is not None
                    and slot not in self._leased
                    and slot not in self._suspect
                    and handle.is_alive()
                ):
                    self._leased.add(slot)
                    return handle
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._pool.wait(timeout=min(remaining, 0.05))

    def _release(self, slot: int) -> None:
        with self._pool:
            self._leased.discard(slot)
            self._pool.notify_all()

    def _restart_slot(self, slot: int) -> bool:
        """Supervisor callback: replace a dead replica in ``slot``.

        Waits for any in-flight lease on the slot to be released first
        (the dispatcher is mid-failover and about to let go) so the old
        handle's pipe is never closed under a thread still polling it.
        """
        with self._pool:
            while slot in self._leased and not self._stopping:
                self._pool.wait(timeout=0.05)
            if self._stopping:
                return False
            old = self._handles[slot]
            self._handles[slot] = None
        generation = old.generation + 1 if old is not None else 1
        if old is not None:
            old.reap()
        handle = spawn_worker(self._payload, slot, generation=generation)
        with self._pool:
            if self._stopping:  # raced with close(): don't publish
                pass
            else:
                self._handles[slot] = handle
                self._suspect.discard(slot)
                self._pool.notify_all()
                return True
        handle.stop(timeout=5.0)
        return False

    # ------------------------------------------------------------------
    # Routing (runs on the batcher's dispatcher threads)
    # ------------------------------------------------------------------
    def _claim_fault(self) -> Tuple[int, bool]:
        """Advance the dispatch index; decide whether this batch's
        replica gets SIGKILLed (the WorkerFaultPlan chaos path)."""
        plan = self.spec.worker_faults
        with self._metrics:
            index = self._dispatch_index
            self._dispatch_index += 1
            inject = (
                plan is not None
                and not self._stopping
                and (plan.max_kills is None
                     or self.stats.kills_injected < plan.max_kills)
                and plan.fires_at(index)
            )
            if inject:
                self.stats.kills_injected += 1
        return index, inject

    def _route_batch(self, images: np.ndarray) -> Dict[str, np.ndarray]:
        """Run one micro-batch on some healthy replica, with failover.

        On :class:`WorkerDiedError` the dead replica is reported to the
        supervisor and the *same* batch re-dispatches to another replica
        — inference is idempotent (identical nets rebuilt from the same
        spec), so the retried result equals the fault-free one.
        """
        images = np.asarray(images, dtype=np.float32)
        _, inject = self._claim_fault()
        attempts = 0
        max_attempts = max(3, 2 * self.spec.replicas)
        while True:
            slot, handle = self._lease()
            start = time.perf_counter()
            try:
                if inject:
                    inject = False
                    seq = handle.begin_infer(images)
                    handle.kill()  # dies holding our request: in-flight crash
                    result = handle.finish_infer(
                        seq, timeout=self.spec.request_timeout_s
                    )
                else:
                    result = handle.infer(
                        images, timeout=self.spec.request_timeout_s
                    )
            except WorkerDiedError:
                # Includes reply timeouts: kill the replica so it can
                # never deliver a stale reply into a future lease.
                handle.kill()
                with self._pool:
                    self._suspect.add(slot)
                self.supervisor.notify_crash(slot)
                self._release(slot)
                attempts += 1
                with self._metrics:
                    self.stats.failovers += 1
                if attempts >= max_attempts:
                    with self._metrics:
                        self.stats.failover_failures += 1
                    raise NoHealthyReplicaError(
                        f"micro-batch failed on {attempts} replica(s) in a "
                        "row; giving up"
                    ) from None
                continue
            except BaseException:
                self._release(slot)
                raise
            elapsed_ms = (time.perf_counter() - start) * 1e3
            with self._metrics:
                self.stats.dispatches += 1
                self.stats.dispatches_per_slot[slot] = (
                    self.stats.dispatches_per_slot.get(slot, 0) + 1
                )
                samples = self._latencies_ms[slot]
                samples.append(elapsed_ms)
                if len(samples) > _MAX_LATENCY_SAMPLES:
                    del samples[: len(samples) - _MAX_LATENCY_SAMPLES]
            self._release(slot)
            return result

    # ------------------------------------------------------------------
    # Serving surface (Deployment parity)
    # ------------------------------------------------------------------
    def submit(self, image: np.ndarray, deadline_ms: Optional[float] = None):
        """Enqueue one image; future resolves to its per-task logits row."""
        return self._batcher.submit(image, deadline_ms=deadline_ms)

    def infer(self, images: np.ndarray) -> Dict[str, np.ndarray]:
        """Run one whole batch synchronously on some healthy replica."""
        if self.closed:
            raise RuntimeError("ClusterDeployment is closed")
        return self._route_batch(images)

    def warmup(self, batch_sizes: Sequence[int] = (1,)) -> "ClusterDeployment":
        """Prime every replica's plan cache for ``batch_sizes``.

        Call before submitting traffic (it leases each slot in turn);
        replicas that are down are skipped.
        """
        size = self.spec.deployment.input_size
        for batch in batch_sizes:
            images = np.zeros((int(batch), 3, size, size), dtype=np.float32)
            for slot in range(self.spec.replicas):
                handle = self._lease_slot(slot, timeout=1.0)
                if handle is None:
                    continue
                try:
                    handle.infer(images, timeout=self.spec.request_timeout_s)
                except WorkerDiedError:
                    with self._pool:
                        self._suspect.add(slot)
                    self.supervisor.notify_crash(slot)
                except RuntimeError:
                    pass  # worker-side error; the replica itself is fine
                finally:
                    self._release(slot)
        return self

    @property
    def task_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.spec.deployment.tasks)

    @property
    def replicas(self) -> int:
        return self.spec.replicas

    @property
    def state(self) -> str:
        return self.state_machine.state

    @property
    def batching_stats(self) -> BatchingStats:
        return self._batcher.stats

    @property
    def queue_depth(self) -> int:
        return self._batcher.queue_depth

    def alive_replicas(self) -> int:
        with self._pool:
            return sum(
                1 for h in self._handles if h is not None and h.is_alive()
            )

    def describe(self) -> str:
        return self.spec.describe()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @staticmethod
    def _worker_report(ws: Dict[str, Any]) -> ThroughputReport:
        """One worker's stats dict -> a per-replica ThroughputReport.

        Known keys map explicitly below; any *other* worker key that
        names a report field passes through unchanged, so counters added
        worker-side (e.g. the ``spec_digest``/``plan_digest`` provenance
        stamps) survive aggregation instead of being silently dropped by
        a hand-maintained mapping.
        """
        plan = ws["plan"]
        fs = ws["fault_stats"]
        report = ThroughputReport(
            batches=ws["batches"],
            images=ws["images"],
            wall_seconds=0.0,
            edge_seconds=ws["edge_seconds"],
            transfer_seconds=ws["transfer_seconds"],
            server_seconds=ws["server_seconds"],
            pipelined_seconds=0.0,
            num_workers=plan["num_workers"],
            arena_bytes=plan["arena_bytes"],
            steady_state_allocs=plan["steady_state_allocs"],
            fused_steps=plan["fused_steps"],
            elided_copies=plan["elided_copies"],
            aliased_views=plan["aliased_views"],
            spmm_row_blocks=plan["spmm_row_blocks"],
            retries=fs["retries"],
            fallback_batches=ws["fallback_batches"],
            fallback_seconds=ws["fallback_seconds"],
            link_down_events=fs["down_events"],
            recoveries=fs["recoveries"],
            server_crashes=fs["server_crashes"],
        )
        consumed = {
            "pid", "batches", "images", "edge_seconds", "transfer_seconds",
            "server_seconds", "plan", "fault_stats", "fallback_batches",
            "fallback_seconds", "degraded",
        }
        for key, value in ws.items():
            if key not in consumed and hasattr(report, key):
                setattr(report, key, value)
        return report

    def report(self) -> ClusterReport:
        """Aggregate per-replica accounting into one cluster report.

        Leases each slot briefly to pull its worker-side stats; slots
        that are down (or busy past a short timeout) appear with
        ``alive: False`` and router-side counters only.
        """
        per_replica: List[Dict[str, Any]] = []
        worker_reports: List[ThroughputReport] = []
        for slot in range(self.spec.replicas):
            with self._metrics:
                samples = list(self._latencies_ms[slot])
                dispatches = self.stats.dispatches_per_slot.get(slot, 0)
            entry: Dict[str, Any] = {
                "slot": slot,
                "alive": False,
                "dispatches": dispatches,
                "p50_ms": (
                    float(np.percentile(samples, 50)) if samples else None
                ),
                "p95_ms": (
                    float(np.percentile(samples, 95)) if samples else None
                ),
            }
            handle = self._lease_slot(slot, timeout=2.0)
            if handle is not None:
                try:
                    ws = handle.stats()
                except (WorkerDiedError, RuntimeError):
                    with self._pool:
                        self._suspect.add(slot)
                    self.supervisor.notify_crash(slot)
                else:
                    entry.update(
                        alive=True,
                        pid=ws["pid"],
                        generation=handle.generation,
                        batches=ws["batches"],
                        images=ws["images"],
                        degraded=ws["degraded"],
                    )
                    worker_reports.append(self._worker_report(ws))
                finally:
                    self._release(slot)
            per_replica.append(entry)

        bstats = self._batcher.stats
        sup = self.supervisor.stats
        wall = time.perf_counter() - self._started_at
        cache_overrides: Dict[str, Any] = {}
        if self.cache is not None and self.cache.response is not None:
            # The response tier lives router-side (shared across all
            # replicas), so its counters override whatever the workers
            # summed up (always zero — workers never see the router
            # cache).
            cs = self.cache.response.stats
            cache_overrides = {
                "response_hits": cs.hits,
                "response_misses": cs.misses,
                "response_evictions": cs.lru_evictions + cs.ttl_evictions,
                "response_bytes": cs.bytes_used,
            }
        aggregate = ThroughputReport.aggregate(
            worker_reports,
            wall_seconds=wall,
            replicas=self.spec.replicas,
            shed=bstats.shed,
            deadline_misses=bstats.expired,
            worker_crashes=sup.crashes_detected,
            worker_restarts=sup.restarts,
            failovers=self.stats.failovers,
            **cache_overrides,
        )
        plan = self.spec.worker_faults
        return ClusterReport(
            aggregate=aggregate,
            per_replica=per_replica,
            state=self.state_machine.state,
            state_history=self.state_machine.history(),
            supervisor={
                "heartbeats": sup.heartbeats,
                "crashes_detected": sup.crashes_detected,
                "crashes_by_heartbeat": sup.crashes_by_heartbeat,
                "crashes_by_notification": sup.crashes_by_notification,
                "restarts": sup.restarts,
                "slots_abandoned": sup.slots_abandoned,
                "backoff_seconds": sup.backoff_seconds,
                "restarts_per_slot": dict(sup.restarts_per_slot),
            },
            batching={
                "submitted": bstats.submitted,
                "requests": bstats.requests,
                "shed": bstats.shed,
                "cache_hits": bstats.cache_hits,
                "expired": bstats.expired,
                "completed": bstats.completed,
                "failed": bstats.failed,
                "cancelled": bstats.cancelled,
                "batches": bstats.batches,
                "mean_batch_size": bstats.mean_batch_size,
            },
            queue_depth=self._batcher.queue_depth,
            kills_injected=self.stats.kills_injected,
            worker_fault_digest=(
                plan.digest() if plan is not None else None
            ),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        with self._pool:
            return self._closed

    def close(self) -> None:
        """Graceful drain, then shut everything down.

        Order matters: (1) stop chaos injection and restarts; (2) close
        the batcher — stops admissions, flushes queued requests through
        the still-alive replicas, fails stranded futures with
        :class:`~repro.serve.batching.ShutdownError`; (3) stop the
        supervisor; (4) stop every replica (ask → join → escalate) and
        release its process bookkeeping so nothing shows up in
        ``multiprocessing.active_children()``.

        Idempotent and safe under concurrent callers — every caller
        returns only after the full drain completed.
        """
        with self._close_lock:
            if self._closed:
                return
            with self._pool:
                self._stopping = True
                self._pool.notify_all()
            self._batcher.close(timeout=self.spec.drain_timeout_s)
            if self.cache is not None:
                self.cache.close()
            self.supervisor.stop()
            with self._pool:
                handles = list(self._handles)
                self._handles = [None] * len(handles)
                self._stopped = True
                self._pool.notify_all()
            for handle in handles:
                if handle is None:
                    continue
                if handle.is_alive():
                    handle.stop(timeout=self.spec.drain_timeout_s)
                else:
                    handle.reap()
            with self._pool:
                self._closed = True

    def __enter__(self) -> "ClusterDeployment":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ClusterDeployment({self.spec.replicas} replica(s), "
            f"state={self.state_machine.state}, "
            f"dispatches={self.stats.dispatches}, "
            f"closed={self.closed})"
        )


#: The supervision-flavoured alias the issue names; same class.
ReplicaManager = ClusterDeployment

_CLUSTER_FIELD_NAMES = {f.name for f in fields(ClusterSpec)} - {"deployment"}


def deploy_cluster(
    spec: Union[ClusterSpec, DeploymentSpec, Dict[str, Any]],
    **overrides,
) -> ClusterDeployment:
    """Build and start a replica cluster from a spec.

    Accepts a :class:`ClusterSpec`, a :class:`DeploymentSpec` (cluster
    knobs split out of ``overrides``; the rest patch the deployment), or
    a ``ClusterSpec.to_dict()``-shaped dict.
    """
    if isinstance(spec, ClusterSpec):
        if overrides:
            spec = ClusterSpec(**{**spec.to_dict(), **overrides})
        return ClusterDeployment(spec)
    if isinstance(spec, dict):
        spec = ClusterSpec.from_dict(spec)
        if overrides:
            spec = ClusterSpec(**{**spec.to_dict(), **overrides})
        return ClusterDeployment(spec)
    if isinstance(spec, DeploymentSpec):
        cluster_kwargs = {
            key: overrides.pop(key)
            for key in list(overrides)
            if key in _CLUSTER_FIELD_NAMES
        }
        if overrides:
            spec = spec.replace(**overrides)
        return ClusterDeployment(ClusterSpec(deployment=spec, **cluster_kwargs))
    raise SpecError(
        "deploy_cluster needs a ClusterSpec, DeploymentSpec or dict, "
        f"got {type(spec).__name__}"
    )
