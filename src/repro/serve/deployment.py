"""The :class:`Deployment` facade: one object, the whole serving stack.

``repro.deploy(spec)`` takes a declarative
:class:`~repro.serve.spec.DeploymentSpec` and owns the full lifecycle
that previously had to be wired by hand across six layers::

    build/adopt net -> resolve cut (optionally via the latency optimizer)
      -> split -> compile (fuse) -> plan (engine) -> wire + channel
        -> pipeline -> dynamic-batching front-end

The resulting object exposes the three serving surfaces:

* :meth:`Deployment.infer` — one batch, synchronous (the old
  ``SplitPipeline.infer``);
* :meth:`Deployment.stream` — many batches with edge/server overlap and
  a :class:`~repro.serve.runtime.ThroughputReport` (the old
  ``SplitPipeline.infer_stream``);
* :meth:`Deployment.submit` — one *image*, asynchronous: returns a
  :class:`~concurrent.futures.Future` resolved by the dynamic
  micro-batching dispatcher, which coalesces concurrent submissions into
  engine-sized batches (new — this is what lets many small clients
  exercise the batch-sharded multicore engine).

Deployments are context managers; :meth:`close` drains the batcher and
reclaims the planned executors' worker threads.
"""

from __future__ import annotations

import threading
import uuid
from concurrent.futures import Future
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..core.architecture import MTLSplitNet
from ..data.base import TaskInfo
from ..deployment.optimizer import optimal_split_index
from ..models.registry import get_spec
from .batching import BatchingStats, DynamicBatcher
from .cache import ServeCache, provenance_digest
from .faults import FaultStats
from .runtime import SplitPipeline, ThroughputReport
from .spec import DeploymentSpec, SpecError

__all__ = ["Deployment", "deploy"]


def _resolve_net(spec: DeploymentSpec) -> MTLSplitNet:
    """Build (or adopt) the network a spec describes."""
    if isinstance(spec.model, str):
        tasks = [TaskInfo(name=name, num_classes=classes) for name, classes in spec.tasks]
        return MTLSplitNet.from_tasks(
            spec.model, tasks, input_size=spec.input_size, seed=spec.seed
        )
    return spec.model


def _resolve_split_index(spec: DeploymentSpec, net: MTLSplitNet) -> Optional[int]:
    """Turn the spec's cut description into a concrete stage count.

    ``"auto"`` runs the Neurosurgeon-style latency optimizer for the
    spec's device pair and channel; its stage index ``k`` (stages
    ``0..k`` on the edge) maps to ``MTLSplitNet.split``'s convention of
    "number of stages on the edge" as ``k + 1``.  A remote-only optimum
    (``k == -1``) clamps to the smallest real cut — a split deployment
    always keeps at least one stage on the edge.
    """
    num_stages = len(list(net.backbone.stages))
    if spec.auto_split:
        backbone_spec = (
            get_spec(spec.model) if isinstance(spec.model, str) else net.backbone.spec
        )
        best = optimal_split_index(
            backbone_spec,
            spec.resolve_edge_device(),
            spec.resolve_server_device(),
            spec.resolve_channel(),
            input_size=spec.input_size,
            wire_format=spec.wire_format(),
        )
        return int(min(max(best.stage_index + 1, 1), num_stages))
    if spec.split_index is None:
        return None  # the paper's default cut: whole backbone on the edge
    if not 1 <= spec.split_index <= num_stages:
        raise SpecError(
            f"split_index {spec.split_index} out of range for "
            f"{spec.describe()}: backbone has {num_stages} stages "
            f"(valid: 1..{num_stages}, None for the default cut, or 'auto')"
        )
    return spec.split_index


class Deployment:
    """A live split-computing deployment built from a (frozen) spec.

    Construct through :func:`deploy`.  Thread-safety: :meth:`submit` may
    be called from any number of threads concurrently; :meth:`infer`,
    :meth:`stream` and :meth:`warmup` take the same internal pipeline
    lock the dispatcher uses, so synchronous and asynchronous traffic
    can coexist without interleaving inside the engine.
    """

    def __init__(self, spec: DeploymentSpec):
        self.spec = spec
        self.net = _resolve_net(spec)
        self.net.eval()
        self.split_index: Optional[int] = _resolve_split_index(spec, self.net)
        self.pipeline = SplitPipeline.from_net(
            self.net,
            spec.resolve_channel(),
            split_index=self.split_index,
            input_size=spec.input_size,
            wire_format=spec.wire_format(),
            compiled=spec.compiled,
            planned=spec.planned,
            num_workers=spec.num_workers,
            optimize=spec.optimize,
            max_cached_plans=spec.max_cached_plans,
            faults=spec.faults,
            fallback=spec.fallback,
            max_retries=spec.max_retries,
            retry_backoff_s=spec.retry_backoff_ms / 1000.0,
            probe_every=spec.probe_every,
            compute=spec.compute,
        )
        self.cache: Optional[ServeCache] = self._build_cache()
        if self.cache is not None and self.cache.feature is not None:
            self.pipeline.feature_cache = self.cache.feature
        self._pipeline_lock = threading.Lock()
        self._batcher: Optional[DynamicBatcher] = None
        self._batcher_lock = threading.Lock()
        # Serialises close() end-to-end: a second concurrent closer
        # blocks here until the first finished draining, so *every*
        # close() caller returns only once the futures are resolved and
        # the executors are down.
        self._close_lock = threading.Lock()
        self._closed = False
        self._provenance: Optional[Tuple[str, str]] = None

    def _build_cache(self) -> Optional[ServeCache]:
        """Construct the serve cache the spec's policy asks for.

        The provenance digest binds every cache key to (a) the exact
        spec — serialised for registry-named models, a per-deployment
        unique token for in-memory nets, which therefore never share
        entries across deployments — (b) the resolved split index, and
        (c) the optimized edge plan-IR description, so an optimizer or
        topology change can never serve stale numerics.
        """
        policy = self.spec.cache
        if policy is None or not policy.enabled:
            return None
        if isinstance(self.spec.model, str):
            spec_part = f"spec:{self.spec.digest()}"
        else:
            spec_part = f"in-memory:{uuid.uuid4().hex}"
        channels = self.net.backbone.spec.input_channels
        size = self.spec.input_size
        plan_part = self.pipeline.edge.plan_provenance((1, channels, size, size))
        provenance = provenance_digest(
            [spec_part, f"split:{self.split_index}", plan_part]
        )
        return ServeCache(policy, provenance)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def task_names(self) -> Tuple[str, ...]:
        return self.net.task_names

    @property
    def traces(self):
        return self.pipeline.traces

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def batching_stats(self) -> BatchingStats:
        """Dispatcher accounting (zeros until the first ``submit``)."""
        if self._batcher is None:
            return BatchingStats()
        return self._batcher.stats

    @property
    def fault_stats(self) -> FaultStats:
        """The resilient link's lifetime fault/degradation counters."""
        return self.pipeline.fault_stats

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-tier cache counter snapshots (empty without a policy)."""
        return self.cache.stats() if self.cache is not None else {}

    @property
    def degraded(self) -> bool:
        """Whether the split channel is currently declared down."""
        return self.pipeline.degraded

    @property
    def execution_mode(self) -> str:
        """How the halves execute: planned engine / fused/compiled / eval-mode."""
        if self.pipeline.edge.planned:
            tier = "" if self.spec.compute == "float32" else f", edge {self.spec.compute}"
            return f"planned engine ({self.spec.num_workers} worker(s){tier})"
        if self.pipeline.edge.compiled:
            return "fused/compiled"
        return "eval-mode"

    def describe(self) -> str:
        cut = self.split_index if self.split_index is not None else "backbone/heads"
        return f"{self.spec.describe()} -> cut at {cut}, {self.execution_mode} halves"

    def provenance(self) -> Tuple[str, str]:
        """``(spec_digest, plan_digest)`` — this deployment's identity.

        ``spec_digest`` is the SHA-256 of the serialised spec (``""``
        for in-memory models, which have no stable serialised form);
        ``plan_digest`` hashes the resolved split index plus the
        *optimized plan-IR text of both halves* (timing-free — see
        :meth:`~repro.serve.runtime._RuntimeBase.plan_provenance`), so
        any optimizer-pass, weight, or topology change moves it.  Both
        stamps ride on every :class:`ThroughputReport` this deployment
        produces and on the :mod:`repro.attest` golden registry.

        Computed lazily (lowering + passes on both halves, once per
        deployment) and cached.
        """
        if self._provenance is None:
            spec_digest = (
                self.spec.digest() if isinstance(self.spec.model, str) else ""
            )
            channels = self.net.backbone.spec.input_channels
            size = self.spec.input_size
            batch_shape = (1, channels, size, size)
            edge_text = self.pipeline.edge.plan_provenance(batch_shape)
            z_shape = self.pipeline.edge.output_shape(batch_shape)
            server_text = self.pipeline.server.plan_provenance(z_shape)
            plan_digest = provenance_digest(
                [f"split:{self.split_index}", edge_text, server_text]
            )
            plan_text = (
                f"split:{self.split_index}\n"
                f"--- edge ---\n{edge_text}\n"
                f"--- server ---\n{server_text}"
            )
            self._provenance = (spec_digest, plan_digest, plan_text)
        return self._provenance[:2]

    def plan_text(self) -> str:
        """The full timing-free plan-IR text behind the plan digest.

        Both halves plus the split marker — the human-readable side of
        :meth:`provenance`'s ``plan_digest``, stored verbatim in the
        :mod:`repro.attest` goldens so a digest mismatch can be narrowed
        to the first divergent step line.
        """
        self.provenance()
        return self._provenance[2]

    # ------------------------------------------------------------------
    # Serving surfaces
    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                f"Deployment({self.spec.describe()}) is closed; "
                "build a new one with repro.deploy"
            )

    def warmup(self, batch_sizes: Iterable[int] = (1,)) -> "Deployment":
        """Prime the executors' plan caches for the given batch sizes.

        Serving traffic dispatched by the batcher arrives in sizes
        ``1..max_batch_size``; pre-planning the common ones keeps
        first-request latency flat.
        """
        self._require_open()
        channels = self.net.backbone.spec.input_channels
        size = self.spec.input_size
        with self._pipeline_lock:
            for batch in batch_sizes:
                zeros = np.zeros((int(batch), channels, size, size), dtype=np.float32)
                self.pipeline.warmup(zeros)
        return self

    def infer(self, images: np.ndarray) -> Dict[str, np.ndarray]:
        """Synchronously run one image batch end-to-end."""
        self._require_open()
        with self._pipeline_lock:
            return self.pipeline.infer(images)

    def stream(
        self, batches: Iterable[np.ndarray]
    ) -> Tuple[List[Dict[str, np.ndarray]], ThroughputReport]:
        """Run many batches with edge/server execution overlapped.

        The returned report carries this deployment's provenance stamps
        (``spec_digest``/``plan_digest``, see :meth:`provenance`), so
        artifacts built from it are traceable to exact numerics.
        """
        self._require_open()
        with self._pipeline_lock:
            outputs, report = self.pipeline.infer_stream(batches)
        report.spec_digest, report.plan_digest = self.provenance()
        return outputs, report

    def _infer_locked(self, images: np.ndarray) -> Dict[str, np.ndarray]:
        with self._pipeline_lock:
            return self.pipeline.infer(images)

    def submit(
        self, image: np.ndarray, deadline_ms: Optional[float] = None
    ) -> "Future":
        """Asynchronously serve one image through the dynamic batcher.

        Returns a future resolving to ``{task: (classes,) ndarray}`` —
        the batch-1 ``infer`` result for this image, minus the batch
        axis.  Concurrent submissions coalesce into micro-batches of up
        to ``spec.max_batch_size`` images (waiting at most
        ``spec.max_queue_delay_ms`` for company), so request-level
        traffic runs through the engine's cached batched plans.

        Overload semantics follow the spec: with ``max_queue_depth`` set,
        a full queue sheds the request by raising
        :class:`~repro.serve.batching.RejectedError` *here*, not in the
        future; ``deadline_ms`` (default ``spec.deadline_ms``) expires
        the request in queue with
        :class:`~repro.serve.batching.DeadlineExceededError` on the
        future if dispatch comes too late.
        """
        self._require_open()
        if self._batcher is None:
            # The closed check repeats under the lock: a close() racing
            # this first submit must not see _batcher is None, tear down
            # the pipeline, and leave us resurrecting a closed executor.
            with self._batcher_lock:
                self._require_open()
                if self._batcher is None:
                    self._batcher = DynamicBatcher(
                        self._infer_locked,
                        max_batch_size=self.spec.max_batch_size,
                        max_queue_delay_ms=self.spec.max_queue_delay_ms,
                        max_queue_depth=self.spec.max_queue_depth,
                        default_deadline_ms=self.spec.deadline_ms,
                        # Keep the repro-serve-batcher prefix: the thread
                        # leak tests (and debugger filtering) key on it.
                        name=f"repro-serve-batcher [{self.spec.describe()}]",
                        response_cache=(
                            self.cache.response if self.cache is not None else None
                        ),
                    )
        return self._batcher.submit(image, deadline_ms=deadline_ms)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain the batcher, then release executor worker threads.

        Idempotent *and* safe under concurrent callers: every caller
        returns only after the drain completed — outstanding ``submit``
        futures are resolved (the batcher flushes its queue, stranding
        none) before the engine resources go away.
        """
        with self._close_lock:
            with self._batcher_lock:
                already = self._closed
                self._closed = True
                batcher = self._batcher
            if already:
                return
            if batcher is not None:
                batcher.close()
            self.pipeline.close()
            if self.cache is not None:
                self.cache.close()

    def __enter__(self) -> "Deployment":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"Deployment({self.describe()}, {state})"


def deploy(spec: Optional[DeploymentSpec] = None, **overrides):
    """Build a live deployment from a spec (the public API).

    Call with a ready spec, keyword overrides on top of one, or pure
    keywords (which construct the spec in place)::

        dep = repro.deploy(model="mobilenet_v3_tiny",
                           tasks=(("scale", 8), ("shape", 4)))
        dep = repro.deploy(spec)                      # as declared
        dep = repro.deploy(spec, num_workers=4)       # spec + override

    Returns a :class:`Deployment` for ``replicas == 1`` (the default),
    or a fault-tolerant multi-process
    :class:`~repro.serve.cluster.ClusterDeployment` for ``replicas > 1``
    — same serving surface (``submit``/``infer``/``close``), plus
    supervision (see :mod:`repro.serve.cluster`).
    """
    if spec is None:
        spec = DeploymentSpec(**overrides)
    elif overrides:
        spec = spec.replace(**overrides)
    if spec.replicas > 1:
        from .cluster import ClusterDeployment, ClusterSpec

        return ClusterDeployment(ClusterSpec(deployment=spec))
    return Deployment(spec)
