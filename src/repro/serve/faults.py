"""Deterministic channel fault injection and the resilient split link.

The split-computing deployment the paper targets lives or dies by the
edge↔server link, yet the fault-free :class:`~repro.serve.runtime
.SimulatedLink` can only model a *healthy* channel.  This module adds
the unhealthy ones — and the machinery that keeps the pipeline useful
while they last:

* :class:`FaultPlan` — a frozen, JSON-round-tripped description of what
  goes wrong and when: seeded per-message drop / delay / corruption
  probabilities, hard link-down windows, and server-stage crash
  windows.  Every decision is a pure function of ``(seed, message
  index)``, so a fault run *replays bit-identically* — the property the
  determinism tests assert — and :meth:`FaultPlan.digest` gives the
  SHA-256 provenance stamp benchmark artifacts carry.
* :class:`ResilientLink` — wraps a link with the fault injector plus
  the client-side survival kit: bounded retries with exponential
  backoff (modelled time, like the link's transfer accounting), and an
  up/down channel state machine.  When retries exhaust, the link is
  *declared down* (:class:`ChannelDownError`) and the pipeline degrades
  to local execution; periodic :meth:`ResilientLink.probe` calls detect
  recovery and restore split mode.

Corruption is modelled as *detected* corruption: real deployments frame
payloads with a CRC, so a corrupted message is indistinguishable from a
dropped one at the decode layer — it costs a retry, never a wrong
answer.  That is why non-dropped results under any fault plan stay
within 1e-6 of fault-free execution.

Windows are expressed in **message-index space** (``[start, end)`` over
the link's send/probe sequence number), not wall-clock time: index
space is what makes replay exact regardless of host speed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "FALLBACK_MODES",
    "ChannelDownError",
    "ChannelFaultError",
    "FaultPlan",
    "FaultStats",
    "ResilientLink",
    "ServerCrashError",
    "WorkerFaultPlan",
]

#: Fallback modes for a degraded split channel (see ``docs/robustness.md``):
#: ``"edge"`` runs both halves locally on the edge device, ``"cloud"``
#: ships the *raw input* over the (still faulty) wire and runs everything
#: server-side, ``"none"`` sheds the request instead of degrading.
FALLBACK_MODES: Tuple[str, ...] = ("edge", "cloud", "none")


class ChannelFaultError(RuntimeError):
    """Base class for injected wire faults (transient, retryable)."""


class ChannelDownError(ChannelFaultError):
    """The link has been declared down (retries exhausted or hard
    outage window); the pipeline should degrade rather than retry."""


class ServerCrashError(ChannelFaultError):
    """The server stage is inside a crash window for this invocation."""


def _windows(value) -> Tuple[Tuple[int, int], ...]:
    """Normalise/validate ``[start, end)`` index windows."""
    try:
        normalised = tuple(
            (int(start), int(end)) for start, end in value
        )
    except (TypeError, ValueError):
        raise ValueError(
            f"windows must be (start, end) index pairs, got {value!r}"
        ) from None
    for start, end in normalised:
        if start < 0 or end <= start:
            raise ValueError(
                f"window ({start}, {end}) must satisfy 0 <= start < end"
            )
    return normalised


def _in_window(index: int, windows: Tuple[Tuple[int, int], ...]) -> bool:
    return any(start <= index < end for start, end in windows)


@dataclass(frozen=True)
class FaultPlan:
    """Frozen, seeded description of one deterministic fault schedule.

    Parameters
    ----------
    drop_rate / delay_rate / corrupt_rate:
        Per-message Bernoulli probabilities (decided independently per
        message index from ``seed``).  Dropped and corrupted messages
        never reach the server (corruption is CRC-detected on arrival)
        and cost the sender a retry; delayed messages arrive intact
        ``delay_seconds`` late.
    delay_seconds:
        Modelled extra latency for a delayed message.
    link_down:
        ``[start, end)`` windows over the link's message index during
        which *every* send and probe fails outright — the hard-outage
        case the degradation state machine exists for.
    server_crash:
        ``[start, end)`` windows over the server stage's invocation
        index during which the server raises instead of serving — the
        pipeline falls back to local execution for those requests.
    seed:
        Seed for the per-message Bernoulli decisions.
    """

    drop_rate: float = 0.0
    delay_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_seconds: float = 0.05
    link_down: Tuple[Tuple[int, int], ...] = field(default_factory=tuple)
    server_crash: Tuple[Tuple[int, int], ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self):
        set_ = object.__setattr__
        for attr in ("drop_rate", "delay_rate", "corrupt_rate"):
            value = float(getattr(self, attr))
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{attr} must be in [0, 1], got {value}")
            set_(self, attr, value)
        if self.drop_rate + self.delay_rate + self.corrupt_rate > 1.0:
            raise ValueError(
                "drop_rate + delay_rate + corrupt_rate must be <= 1, got "
                f"{self.drop_rate + self.delay_rate + self.corrupt_rate}"
            )
        set_(self, "delay_seconds", float(self.delay_seconds))
        if self.delay_seconds < 0:
            raise ValueError(f"delay_seconds must be >= 0, got {self.delay_seconds}")
        set_(self, "link_down", _windows(self.link_down))
        set_(self, "server_crash", _windows(self.server_crash))
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an int, got {self.seed!r}")

    # ------------------------------------------------------------------
    # Deterministic per-message decisions
    # ------------------------------------------------------------------
    def decision(self, message_index: int) -> str:
        """The fault verdict for one message: ``"down"``, ``"drop"``,
        ``"delay"``, ``"corrupt"`` or ``"ok"``.

        A pure function of ``(seed, message_index)`` — replaying the
        same call sequence replays the same faults bit-for-bit.
        """
        if _in_window(message_index, self.link_down):
            return "down"
        if not (self.drop_rate or self.delay_rate or self.corrupt_rate):
            return "ok"
        draw = float(np.random.default_rng((self.seed, message_index)).random())
        if draw < self.drop_rate:
            return "drop"
        if draw < self.drop_rate + self.corrupt_rate:
            return "corrupt"
        if draw < self.drop_rate + self.corrupt_rate + self.delay_rate:
            return "delay"
        return "ok"

    def server_crashes(self, call_index: int) -> bool:
        """Whether the server stage crashes on its ``call_index``-th
        invocation."""
        return _in_window(call_index, self.server_crash)

    @property
    def is_null(self) -> bool:
        """True when the plan can never inject anything."""
        return (
            not self.drop_rate
            and not self.delay_rate
            and not self.corrupt_rate
            and not self.link_down
            and not self.server_crash
        )

    # ------------------------------------------------------------------
    # Serialisation + provenance
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "drop_rate": self.drop_rate,
            "delay_rate": self.delay_rate,
            "corrupt_rate": self.corrupt_rate,
            "delay_seconds": self.delay_seconds,
            "link_down": [[start, end] for start, end in self.link_down],
            "server_crash": [[start, end] for start, end in self.server_crash],
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown FaultPlan keys {unknown}; known keys: {sorted(known)}"
            )
        return cls(**dict(data))

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """SHA-256 of the canonical JSON — the provenance stamp
        benchmark artifacts record so a fault run names its schedule."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()


@dataclass
class FaultStats:
    """Counters for one :class:`ResilientLink`'s lifetime."""

    messages: int = 0        # send/probe attempts offered to the injector
    delivered: int = 0       # messages that arrived (possibly delayed)
    drops: int = 0
    corruptions: int = 0     # CRC-detected on arrival; retried like drops
    delays: int = 0
    retries: int = 0         # re-send attempts beyond each first try
    down_events: int = 0     # transitions up -> down (declared outages)
    recoveries: int = 0      # transitions down -> up (successful probes)
    probes: int = 0
    server_crashes: int = 0  # filled by the pipeline's server-stage wrapper


class ResilientLink:
    """A link wrapper that survives its fault plan — or degrades loudly.

    Wraps a transfer-accounting link (anything with
    ``send(payload) -> seconds``, normally
    :class:`~repro.serve.runtime.SimulatedLink`) with the fault injector
    and retry/backoff/state machinery.  All added latency (injected
    delays, backoff waits) is *modelled*, consistent with the wrapped
    link: it appears in the returned transfer seconds, not the wall
    clock.

    Parameters
    ----------
    link:
        The underlying transfer-accounting link.
    plan:
        The :class:`FaultPlan`; ``None`` behaves exactly like the bare
        link (zero injected faults, no overhead worth measuring).
    max_retries:
        Re-send attempts after a dropped/corrupted message before the
        link is declared down.
    backoff_seconds:
        Base of the exponential backoff charged per retry
        (``backoff * 2**attempt`` modelled seconds).
    """

    def __init__(
        self,
        link,
        plan: Optional[FaultPlan] = None,
        max_retries: int = 2,
        backoff_seconds: float = 0.01,
    ):
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_seconds < 0:
            raise ValueError(f"backoff_seconds must be >= 0, got {backoff_seconds}")
        self.link = link
        self.plan = plan
        self.max_retries = int(max_retries)
        self.backoff_seconds = float(backoff_seconds)
        self.stats = FaultStats()
        self.message_index = 0  # position in the plan's decision sequence
        self._down = False

    @property
    def is_down(self) -> bool:
        """Whether the channel is currently declared down."""
        return self._down

    def _assess(self) -> str:
        decision = (
            self.plan.decision(self.message_index) if self.plan is not None else "ok"
        )
        self.message_index += 1
        self.stats.messages += 1
        return decision

    def send(self, payload: bytes) -> float:
        """Deliver ``payload``, retrying through transient faults.

        Returns the modelled transfer seconds including failed attempts,
        injected delays and backoff.  Raises :class:`ChannelDownError`
        after ``max_retries`` consecutive failures (or inside a hard
        outage window) — at which point the link is declared down and
        stays down until a :meth:`probe` succeeds.
        """
        if self._down:
            raise ChannelDownError(
                "link is declared down; probe before sending again"
            )
        total = 0.0
        for attempt in range(self.max_retries + 1):
            decision = self._assess()
            total += self.link.send(payload)  # bytes hit the wire either way
            if decision == "ok" or decision == "delay":
                if decision == "delay":
                    self.stats.delays += 1
                    total += self.plan.delay_seconds
                self.stats.delivered += 1
                self.stats.retries += attempt
                return total
            if decision == "down":
                self.stats.retries += attempt
                self._declare_down()
            if decision == "drop":
                self.stats.drops += 1
            else:  # corrupt: CRC-detected on arrival, retried like a drop
                self.stats.corruptions += 1
            total += self.backoff_seconds * (2 ** attempt)
        self.stats.retries += self.max_retries
        self._declare_down()

    def _declare_down(self):
        self._down = True
        self.stats.down_events += 1
        raise ChannelDownError(
            f"link declared down after message {self.message_index - 1} "
            f"({self.stats.drops} drops, {self.stats.corruptions} corruptions "
            "so far); degrade to local execution and probe for recovery"
        )

    def probe(self) -> bool:
        """One recovery probe; flips the link back up on success.

        Consumes a message index (so probes advance through outage
        windows deterministically) but transfers no payload bytes.
        """
        self.stats.probes += 1
        decision = (
            self.plan.decision(self.message_index) if self.plan is not None else "ok"
        )
        self.message_index += 1
        self.stats.messages += 1
        if decision in ("ok", "delay"):
            if self._down:
                self.stats.recoveries += 1
            self._down = False
            return True
        return False


# ---------------------------------------------------------------------------
# Worker (process-level) fault plans
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerFaultPlan:
    """Frozen, seeded schedule of replica *process* kills.

    Where :class:`FaultPlan` injects faults on the wire, this plan kills
    whole worker processes: the cluster router consults it at dispatch
    time and SIGKILLs the replica that just received the request when the
    plan fires — the hardest fault a supervisor has to survive (no
    goodbye message, no flushed state, an in-flight request lost).

    Like :class:`FaultPlan`, every decision is a pure function of
    ``(seed, request_index)`` over the router's global dispatch index, so
    a chaos run replays bit-identically, and :meth:`digest` stamps the
    schedule into benchmark artifacts.

    Parameters
    ----------
    kill_indices:
        Explicit dispatch indices at which to kill the serving replica.
    kill_rate:
        Additional per-index Bernoulli kill probability (decided
        independently per index from ``seed``).
    max_kills:
        Hard cap on total kills a run may inject; ``None`` is unlimited.
        The cap is applied by the consumer (kills beyond it are ignored),
        which keeps :meth:`fires_at` itself pure.
    seed:
        Seed for the Bernoulli decisions.
    """

    kill_indices: Tuple[int, ...] = field(default_factory=tuple)
    kill_rate: float = 0.0
    max_kills: Optional[int] = None
    seed: int = 0

    def __post_init__(self):
        set_ = object.__setattr__
        try:
            indices = tuple(sorted(int(i) for i in self.kill_indices))
        except (TypeError, ValueError):
            raise ValueError(
                f"kill_indices must be ints, got {self.kill_indices!r}"
            ) from None
        if any(i < 0 for i in indices):
            raise ValueError(f"kill_indices must be >= 0, got {indices}")
        set_(self, "kill_indices", indices)
        rate = float(self.kill_rate)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"kill_rate must be in [0, 1], got {rate}")
        set_(self, "kill_rate", rate)
        if self.max_kills is not None:
            if (
                not isinstance(self.max_kills, int)
                or isinstance(self.max_kills, bool)
                or self.max_kills < 0
            ):
                raise ValueError(
                    f"max_kills must be an int >= 0 or None, got {self.max_kills!r}"
                )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an int, got {self.seed!r}")

    # -- deterministic decisions ---------------------------------------
    def fires_at(self, request_index: int) -> bool:
        """Whether the plan kills the serving replica at this dispatch
        index — a pure function of ``(seed, request_index)``."""
        if request_index in self.kill_indices:
            return True
        if not self.kill_rate:
            return False
        draw = float(
            np.random.default_rng((self.seed, 0xC1, request_index)).random()
        )
        return draw < self.kill_rate

    def schedule(self, count: int) -> Tuple[int, ...]:
        """The kill indices the plan would fire over ``count`` dispatch
        indices (before the ``max_kills`` cap) — the replayable schedule
        the determinism tests compare."""
        fired = tuple(i for i in range(count) if self.fires_at(i))
        if self.max_kills is not None:
            fired = fired[: self.max_kills]
        return fired

    @property
    def is_null(self) -> bool:
        """True when the plan can never kill anything."""
        return not self.kill_indices and not self.kill_rate or self.max_kills == 0

    # -- serialisation + provenance ------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "kill_indices": list(self.kill_indices),
            "kill_rate": self.kill_rate,
            "max_kills": self.max_kills,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkerFaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown WorkerFaultPlan keys {unknown}; known keys: {sorted(known)}"
            )
        return cls(**dict(data))

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WorkerFaultPlan":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """SHA-256 of the canonical JSON — the provenance stamp
        ``BENCH_serve_cluster.json`` records so a chaos run names its
        kill schedule."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    # -- CLI string form -----------------------------------------------
    def to_string(self) -> str:
        """Compact ``key=value,...`` form (inverse of :meth:`from_string`);
        kill indices join with ``+``: ``"at=8+24,rate=0.01,seed=3"``."""
        parts = []
        if self.kill_indices:
            parts.append("at=" + "+".join(str(i) for i in self.kill_indices))
        if self.kill_rate:
            parts.append(f"rate={self.kill_rate!r}")
        if self.max_kills is not None:
            parts.append(f"max={self.max_kills}")
        if self.seed:
            parts.append(f"seed={self.seed}")
        return ",".join(parts) or "at="

    @classmethod
    def from_string(cls, text: str) -> "WorkerFaultPlan":
        """Parse ``"at=8+24"`` / ``"rate=0.02,max=3,seed=5"`` (what
        ``repro serve --worker-faults`` takes)."""
        if not isinstance(text, str) or not text.strip():
            raise ValueError(
                f"worker fault plan must be a non-empty string, got {text!r}"
            )
        payload: Dict[str, Any] = {}
        for part in filter(None, (p.strip() for p in text.strip().split(","))):
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(
                    f"worker fault plan parts must be key=value, got {part!r}"
                )
            key = key.strip()
            value = value.strip()
            try:
                if key == "at":
                    payload["kill_indices"] = tuple(
                        int(v) for v in value.split("+") if v
                    )
                elif key == "rate":
                    payload["kill_rate"] = float(value)
                elif key == "max":
                    payload["max_kills"] = int(value)
                elif key == "seed":
                    payload["seed"] = int(value)
                else:
                    raise ValueError(
                        f"unknown worker fault plan key {key!r} "
                        "(known: at, rate, max, seed)"
                    )
            except ValueError as error:
                if "unknown worker fault plan" in str(error):
                    raise
                raise ValueError(
                    f"bad worker fault plan value for {key!r}: {value!r}"
                ) from None
        return cls(**payload)
