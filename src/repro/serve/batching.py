"""Dynamic micro-batching for concurrent single-image requests.

The planned execution engine (:mod:`repro.nn.engine`) is batch-sharded:
its multicore speedups and GEMM efficiency come from processing many
images per call.  A serving front-end, however, receives *individual*
requests from many concurrent clients — exactly the workload where
batch-1 execution leaves the engine idle (the ROADMAP's open item).

:class:`DynamicBatcher` closes that gap the way Clipper-style serving
systems do: ``submit(image)`` enqueues the request and returns a
:class:`~concurrent.futures.Future`; a single background dispatcher
coalesces whatever is queued into micro-batches, bounded by
``max_batch_size`` (never run more than this many images at once) and
``max_queue_delay_ms`` (never hold the oldest request longer than this
waiting for company).  Each micro-batch runs through one batched
``infer`` call — hitting the executor's cached per-shape
:class:`~repro.nn.engine.ExecutionPlan` — and the per-image rows are
sliced back onto their futures.

Requests of different image shapes may be interleaved; the dispatcher
groups each micro-batch by shape so every underlying ``infer`` call sees
a homogeneous batch.  With the default float32 wire format, batched
results are bit-for-bit within 1e-6 of sequential batch-1 calls (the
property the concurrency tests assert); the ``quant8`` wire format
quantises per batch, so there results can differ at quantisation
granularity.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["BatchingStats", "DynamicBatcher"]

_SHUTDOWN = object()


@dataclass
class BatchingStats:
    """Dispatcher-side accounting for one batcher's lifetime.

    ``batch_size_histogram`` maps dispatched batch size to how many
    batches of that size ran — the distribution that shows whether
    concurrent load actually coalesced (many large batches) or trickled
    through one by one.
    """

    requests: int = 0
    batches: int = 0
    images: int = 0
    max_batch_size_seen: int = 0
    batch_size_histogram: Dict[int, int] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        return self.images / self.batches if self.batches else 0.0

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.images += size
        self.max_batch_size_seen = max(self.max_batch_size_seen, size)
        self.batch_size_histogram[size] = self.batch_size_histogram.get(size, 0) + 1


class DynamicBatcher:
    """Coalesces concurrent ``submit`` calls into bounded micro-batches.

    Parameters
    ----------
    infer_batch:
        Callable executing one homogeneous image batch ``(n, ...)`` and
        returning either a ``{task: (n, classes) ndarray}`` dict or a
        single ``(n, ...)`` array.  Called only from the dispatcher
        thread, so it needs no internal locking.
    max_batch_size:
        Hard cap on images per dispatched batch.
    max_queue_delay_ms:
        Longest the dispatcher waits for more requests once one is
        pending.  ``0`` dispatches whatever is instantaneously queued
        (pure coalescing, no added latency).
    name:
        Thread-name prefix, visible in debuggers and the leak tests.
    """

    def __init__(
        self,
        infer_batch: Callable[[np.ndarray], object],
        max_batch_size: int = 8,
        max_queue_delay_ms: float = 2.0,
        name: str = "repro-serve-batcher",
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_queue_delay_ms < 0:
            raise ValueError(
                f"max_queue_delay_ms must be >= 0, got {max_queue_delay_ms}"
            )
        self._infer_batch = infer_batch
        self.max_batch_size = int(max_batch_size)
        self.max_queue_delay = float(max_queue_delay_ms) / 1e3
        self.stats = BatchingStats()
        self._stats_lock = threading.Lock()  # submit() increments from any thread
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = threading.Event()
        self._thread = threading.Thread(
            target=self._dispatch_loop, name=name, daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(self, image: np.ndarray) -> "Future":
        """Enqueue one image; resolve to its per-task logits row.

        ``image`` is a single sample (no batch axis — e.g. ``(C, H, W)``
        for the conv backbones).  The returned future resolves to what a
        batch-1 ``infer`` would return for it, minus the batch axis:
        ``{task: (classes,) ndarray}`` for multi-task deployments.
        """
        if self._closed.is_set():
            raise RuntimeError("DynamicBatcher is closed; no new submissions")
        array = np.asarray(image, dtype=np.float32)
        future: "Future" = Future()
        with self._stats_lock:  # += from client threads is not atomic
            self.stats.requests += 1
        self._queue.put((array, future))
        return future

    # ------------------------------------------------------------------
    # Dispatcher side
    # ------------------------------------------------------------------
    def _collect(self, first) -> Tuple[List, bool]:
        """Gather one micro-batch starting from ``first``.

        Returns ``(requests, saw_shutdown)``.  Waits at most
        ``max_queue_delay`` past the first request, stops early at
        ``max_batch_size``.
        """
        batch = [first]
        deadline = time.monotonic() + self.max_queue_delay
        while len(batch) < self.max_batch_size:
            timeout = deadline - time.monotonic()
            try:
                if timeout > 0:
                    item = self._queue.get(timeout=timeout)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                return batch, True
            batch.append(item)
        return batch, False

    def _run_batch(self, batch: List) -> None:
        """Execute one micro-batch, grouped by image shape."""
        # Drop requests whose future was cancelled while queued.
        live = [
            (image, future)
            for image, future in batch
            if future.set_running_or_notify_cancel()
        ]
        if not live:
            return
        groups: Dict[Tuple[int, ...], List] = {}
        for image, future in live:
            groups.setdefault(tuple(image.shape), []).append((image, future))
        for shaped in groups.values():
            images = np.stack([image for image, _ in shaped])
            try:
                outputs = self._infer_batch(images)
            except BaseException as error:
                for _, future in shaped:
                    future.set_exception(error)
                continue
            self.stats.record_batch(len(shaped))
            for row, (_, future) in enumerate(shaped):
                if isinstance(outputs, dict):
                    future.set_result(
                        {name: np.asarray(value)[row] for name, value in outputs.items()}
                    )
                else:
                    future.set_result(np.asarray(outputs)[row])

    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            batch, saw_shutdown = self._collect(item)
            self._run_batch(batch)
            if saw_shutdown:
                return

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: Optional[float] = 5.0) -> None:
        """Stop accepting requests, flush the queue, stop the thread.

        Requests already submitted are still dispatched (the shutdown
        sentinel queues *behind* them); anything somehow left after the
        dispatcher exits is failed with ``RuntimeError`` so no future
        hangs forever.  Idempotent.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        self._queue.put(_SHUTDOWN)
        self._thread.join(timeout=timeout)
        while True:  # fail leftovers rather than strand their futures
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                continue
            _, future = item
            if future.set_running_or_notify_cancel():
                future.set_exception(RuntimeError("DynamicBatcher closed"))

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def __enter__(self) -> "DynamicBatcher":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DynamicBatcher(max_batch_size={self.max_batch_size}, "
            f"max_queue_delay_ms={self.max_queue_delay * 1e3:g}, "
            f"requests={self.stats.requests}, batches={self.stats.batches})"
        )
