"""Dynamic micro-batching for concurrent single-image requests.

The planned execution engine (:mod:`repro.nn.engine`) is batch-sharded:
its multicore speedups and GEMM efficiency come from processing many
images per call.  A serving front-end, however, receives *individual*
requests from many concurrent clients — exactly the workload where
batch-1 execution leaves the engine idle (the ROADMAP's open item).

:class:`DynamicBatcher` closes that gap the way Clipper-style serving
systems do: ``submit(image)`` enqueues the request and returns a
:class:`~concurrent.futures.Future`; a single background dispatcher
coalesces whatever is queued into micro-batches, bounded by
``max_batch_size`` (never run more than this many images at once) and
``max_queue_delay_ms`` (never hold the oldest request longer than this
waiting for company).  Each micro-batch runs through one batched
``infer`` call — hitting the executor's cached per-shape
:class:`~repro.nn.engine.ExecutionPlan` — and the per-image rows are
sliced back onto their futures.

On top of coalescing, the batcher owns the deployment's **overload
policy** (see ``docs/robustness.md``):

* **Admission control** — ``max_queue_depth`` bounds the request queue;
  a submit against a full queue is *shed* immediately with
  :class:`RejectedError` instead of growing an unbounded backlog.  Open-
  loop traffic past saturation then degrades to a bounded, predictable
  shed rate rather than unbounded latency.
* **Deadlines** — each request may carry a deadline; requests that
  expire while still queued are dropped with
  :class:`DeadlineExceededError` (their batch slot goes to a request
  that can still make its SLO), and each dispatched micro-batch is
  filled in earliest-deadline-first order.

Requests of different image shapes may be interleaved; the dispatcher
groups each micro-batch by shape so every underlying ``infer`` call sees
a homogeneous batch.  With the default float32 wire format, batched
results are bit-for-bit within 1e-6 of sequential batch-1 calls (the
property the concurrency tests assert); the ``quant8`` wire format
quantises per batch, so there results can differ at quantisation
granularity.

When a :class:`~repro.serve.cache.ResponseCache` is attached (see
``docs/caching.md``), ``submit`` resolves **cache hits at admission** —
before the request ever occupies queue depth, so a hit can neither be
shed nor expire — and runs **single-flight** coalescing: concurrent
submits of an input already being computed attach to the in-flight
request's future instead of queueing duplicate edge work.  Both paths
count in ``stats.cache_hits``, extending the conservation ledger to
``submitted == shed + cache_hits + requests``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "BatchingStats",
    "DeadlineExceededError",
    "DynamicBatcher",
    "RejectedError",
    "ShutdownError",
]


class RejectedError(RuntimeError):
    """Request shed by admission control: the queue was full.

    Open-loop clients treat this as backpressure — the deployment is
    past saturation and refusing work it could not finish in time.
    """


class DeadlineExceededError(RuntimeError):
    """Request dropped because its deadline passed while still queued."""


class ShutdownError(RuntimeError):
    """Request failed because the batcher shut down while it was queued.

    The *named* drain error: a graceful shutdown (``close()``, or the
    CLI's SIGTERM/SIGINT handler) stops admissions, flushes what it can,
    and fails anything still stranded with this — never a silent hang.
    Subclasses ``RuntimeError`` so pre-existing ``except RuntimeError``
    call sites keep working.
    """


@dataclass
class BatchingStats:
    """Dispatcher-side accounting for one batcher's lifetime.

    ``batch_size_histogram`` maps dispatched batch size to how many
    batches of that size ran — the distribution that shows whether
    concurrent load actually coalesced (many large batches) or trickled
    through one by one.

    The overload counters partition every ``submit`` attempt:
    ``submitted == shed + cache_hits + requests`` (rejected at the door
    vs answered from cache at the door vs accepted into the queue), and
    every accepted request ends exactly one way, so at quiescence
    ``requests == completed + expired + failed + cancelled`` — the
    conservation law the overload property tests assert.  Without a
    response cache ``cache_hits`` stays 0 and the ledger reads exactly
    as it did pre-cache.
    """

    requests: int = 0        # accepted submissions
    submitted: int = 0       # all submit attempts (accepted + hits + shed)
    shed: int = 0            # rejected by admission control (queue full)
    cache_hits: int = 0      # answered at admission (stored hit or coalesced)
    expired: int = 0         # dropped in queue past their deadline
    completed: int = 0       # futures resolved with a result
    failed: int = 0          # futures failed by an infer error
    cancelled: int = 0       # futures cancelled by the caller while queued
    batches: int = 0
    images: int = 0
    max_batch_size_seen: int = 0
    batch_size_histogram: Dict[int, int] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        return self.images / self.batches if self.batches else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of submit attempts rejected by admission control."""
        return self.shed / self.submitted if self.submitted else 0.0

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.images += size
        self.max_batch_size_seen = max(self.max_batch_size_seen, size)
        self.batch_size_histogram[size] = self.batch_size_histogram.get(size, 0) + 1


@dataclass
class _Pending:
    """One queued request awaiting dispatch."""

    image: np.ndarray
    future: "Future"
    sequence: int
    enqueued: float                  # monotonic seconds
    deadline: Optional[float] = None  # absolute monotonic seconds, or None

    def sort_key(self) -> Tuple[float, int]:
        # Earliest deadline first; FIFO among equal (or absent) deadlines.
        deadline = self.deadline if self.deadline is not None else float("inf")
        return (deadline, self.sequence)


class DynamicBatcher:
    """Coalesces concurrent ``submit`` calls into bounded micro-batches.

    Parameters
    ----------
    infer_batch:
        Callable executing one homogeneous image batch ``(n, ...)`` and
        returning either a ``{task: (n, classes) ndarray}`` dict or a
        single ``(n, ...)`` array.  Called only from the dispatcher
        thread, so it needs no internal locking.
    max_batch_size:
        Hard cap on images per dispatched batch.
    max_queue_delay_ms:
        Longest the dispatcher waits for more requests once one is
        pending.  ``0`` dispatches whatever is instantaneously queued
        (pure coalescing, no added latency).
    max_queue_depth:
        Admission-control bound on queued requests; a ``submit`` against
        a full queue raises :class:`RejectedError` (and counts in
        ``stats.shed``).  ``None`` keeps the queue unbounded — the
        pre-overload behaviour.
    default_deadline_ms:
        Deadline applied to every request that does not pass its own
        ``deadline_ms`` to :meth:`submit`; ``None`` means no deadline.
    dispatchers:
        Number of dispatcher threads cutting and running micro-batches
        concurrently.  ``1`` (the default) is the single-process serving
        path — one deployment can only run one batch at a time anyway;
        the replica cluster passes its replica count so each replica can
        have a batch in flight.
    name:
        Thread-name prefix, visible in debuggers and the leak tests.
    response_cache:
        Optional :class:`~repro.serve.cache.ResponseCache`.  When given,
        every submit is first looked up by content digest: a stored hit
        resolves immediately at admission (no queue slot, no deadline,
        counted in ``stats.cache_hits``); a miss whose key is already
        being computed joins that in-flight request (single-flight — no
        duplicate edge compute; followers share the primary's outcome,
        including its deadline fate); a cold miss queues normally and
        populates the cache when it completes.
    """

    def __init__(
        self,
        infer_batch: Callable[[np.ndarray], object],
        max_batch_size: int = 8,
        max_queue_delay_ms: float = 2.0,
        max_queue_depth: Optional[int] = None,
        default_deadline_ms: Optional[float] = None,
        dispatchers: int = 1,
        name: str = "repro-serve-batcher",
        response_cache: Optional[object] = None,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_queue_delay_ms < 0:
            raise ValueError(
                f"max_queue_delay_ms must be >= 0, got {max_queue_delay_ms}"
            )
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1 or None, got {max_queue_depth}"
            )
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be > 0 or None, got {default_deadline_ms}"
            )
        if not isinstance(dispatchers, int) or dispatchers < 1:
            raise ValueError(f"dispatchers must be a positive int, got {dispatchers!r}")
        self._infer_batch = infer_batch
        self.max_batch_size = int(max_batch_size)
        self.max_queue_delay = float(max_queue_delay_ms) / 1e3
        self.max_queue_depth = max_queue_depth
        self.default_deadline_ms = default_deadline_ms
        self.stats = BatchingStats()
        # One lock/condition guards the pending list, the stats and the
        # closed flag: submit/close/dispatch can never interleave in a
        # way that strands a request (the race the old queue.Queue
        # implementation had between close()'s drain and a late put).
        self._cond = threading.Condition()
        # close() must be idempotent *and* safe under concurrent callers:
        # the second closer blocks on this lock until the first finishes
        # draining, so both return only once every future is resolved.
        self._close_lock = threading.Lock()
        self._pending: List[_Pending] = []
        self._sequence = 0
        self._closed = False
        self._response_cache = response_cache
        # Single-flight bookkeeping: key -> (primary future, followers).
        # Guarded by its own plain lock, never held while resolving a
        # future (client done-callbacks must not run under our locks).
        self._inflight: Dict[str, Tuple["Future", List["Future"]]] = {}
        self._inflight_lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._dispatch_loop,
                name=name if dispatchers == 1 else f"{name} #{index}",
                daemon=True,
            )
            for index in range(dispatchers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(
        self, image: np.ndarray, deadline_ms: Optional[float] = None
    ) -> "Future":
        """Enqueue one image; resolve to its per-task logits row.

        ``image`` is a single sample (no batch axis — e.g. ``(C, H, W)``
        for the conv backbones).  The returned future resolves to what a
        batch-1 ``infer`` would return for it, minus the batch axis:
        ``{task: (classes,) ndarray}`` for multi-task deployments.

        ``deadline_ms`` bounds how long the request may wait *in queue*
        (overriding ``default_deadline_ms``); expired requests fail with
        :class:`DeadlineExceededError`.  Raises :class:`RejectedError`
        without enqueueing when admission control sheds the request.
        """
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0 or None, got {deadline_ms}")
        array = np.asarray(image, dtype=np.float32)
        # Content-digest lookup happens before taking the condition lock
        # (hashing is pure CPU; no reason to serialise submitters on it).
        key: Optional[str] = None
        hit = None
        if self._response_cache is not None:
            key = self._response_cache.key_for(array)
            hit = self._response_cache.get(key)
        now = time.monotonic()
        with self._cond:
            if self._closed:
                raise RuntimeError("DynamicBatcher is closed; no new submissions")
            self.stats.submitted += 1
            if hit is not None:
                # Resolved at admission: a hit never occupies queue
                # depth, so it can neither be shed nor expire.
                self.stats.cache_hits += 1
                future: "Future" = Future()
                future.set_result(hit)
                return future
            if key is not None:
                follower = self._join_inflight(key)
                if follower is not None:
                    # Single-flight: the same input is already being
                    # computed; share its outcome instead of queueing a
                    # duplicate.  No queue slot, so no shed/deadline.
                    self.stats.cache_hits += 1
                    return follower
            if (
                self.max_queue_depth is not None
                and len(self._pending) >= self.max_queue_depth
            ):
                self.stats.shed += 1
                raise RejectedError(
                    f"request shed: queue full ({len(self._pending)} waiting, "
                    f"max_queue_depth={self.max_queue_depth})"
                )
            self.stats.requests += 1
            future = Future()
            self._pending.append(
                _Pending(
                    image=array,
                    future=future,
                    sequence=self._sequence,
                    enqueued=now,
                    deadline=(
                        now + deadline_ms / 1e3 if deadline_ms is not None else None
                    ),
                )
            )
            self._sequence += 1
            if key is not None:
                with self._inflight_lock:
                    self._inflight[key] = (future, [])
                # Fires on *any* resolution — result, infer error,
                # deadline expiry, cancellation, shutdown drain — so the
                # in-flight entry can never leak.
                future.add_done_callback(
                    lambda done, key=key: self._finish_inflight(key, done)
                )
            self._cond.notify_all()
        return future

    def _join_inflight(self, key: str) -> Optional["Future"]:
        """Attach a follower future to an in-flight computation of
        ``key``, or return None when none is in flight."""
        with self._inflight_lock:
            entry = self._inflight.get(key)
            if entry is None:
                return None
            follower: "Future" = Future()
            entry[1].append(follower)
        if self._response_cache is not None:
            self._response_cache.note_coalesced()
        return follower

    def _finish_inflight(self, key: str, primary: "Future") -> None:
        """Primary resolved: store its result, settle the followers."""
        with self._inflight_lock:
            entry = self._inflight.pop(key, None)
        if entry is None:
            return
        followers = entry[1]
        stored = None
        error: Optional[BaseException] = None
        if primary.cancelled():
            error = None  # followers are cancelled below
        else:
            error = primary.exception()
            if error is None and self._response_cache is not None:
                # Store the frozen copy; followers share it so no client
                # can mutate another's result through the cache.
                stored = self._response_cache.put(key, primary.result())
        for follower in followers:
            if not follower.set_running_or_notify_cancel():
                continue
            if primary.cancelled():
                follower.set_exception(
                    ShutdownError("in-flight request this submit had joined "
                                  "was cancelled")
                )
            elif error is not None:
                follower.set_exception(error)
            elif stored is not None:
                follower.set_result(dict(stored) if isinstance(stored, dict) else stored)
            else:
                follower.set_result(primary.result())

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for dispatch."""
        with self._cond:
            return len(self._pending)

    # ------------------------------------------------------------------
    # Dispatcher side
    # ------------------------------------------------------------------
    def _harvest(self) -> Optional[List[_Pending]]:
        """Wait for work, then cut one deadline-ordered micro-batch.

        Returns ``None`` when the batcher is closed and fully drained.
        Must run without the lock held; takes it internally.
        """
        with self._cond:
            while not self._pending:
                if self._closed:
                    return None
                self._cond.wait()
            # Collection window: wait for company until the oldest
            # request has been held max_queue_delay, the batch is full,
            # or close() asks for an immediate drain.
            window_end = self._pending[0].enqueued + self.max_queue_delay
            while (
                len(self._pending) < self.max_batch_size
                and not self._closed
            ):
                remaining = window_end - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
                if not self._pending:  # everything cancelled meanwhile
                    return []
            # Drop-expired: a request past its deadline loses its batch
            # slot to one that can still make its SLO.
            now = time.monotonic()
            live: List[_Pending] = []
            for item in self._pending:
                if item.deadline is not None and item.deadline < now:
                    if item.future.set_running_or_notify_cancel():
                        self.stats.expired += 1
                        item.future.set_exception(
                            DeadlineExceededError(
                                "request expired in queue after "
                                f"{(now - item.enqueued) * 1e3:.1f} ms "
                                "(deadline-aware batching dropped it)"
                            )
                        )
                    else:
                        self.stats.cancelled += 1
                else:
                    live.append(item)
            # SLO-priority dispatch: earliest deadline first.
            live.sort(key=_Pending.sort_key)
            batch = live[: self.max_batch_size]
            self._pending = live[self.max_batch_size:]
            return batch

    def _run_batch(self, batch: List[_Pending]) -> None:
        """Execute one micro-batch, grouped by image shape."""
        # Drop requests whose future was cancelled while queued.
        live: List[_Pending] = []
        for item in batch:
            if item.future.set_running_or_notify_cancel():
                live.append(item)
            else:
                with self._cond:
                    self.stats.cancelled += 1
        if not live:
            return
        groups: Dict[Tuple[int, ...], List[_Pending]] = {}
        for item in live:
            groups.setdefault(tuple(item.image.shape), []).append(item)
        for shaped in groups.values():
            images = np.stack([item.image for item in shaped])
            try:
                outputs = self._infer_batch(images)
            except BaseException as error:
                for item in shaped:
                    item.future.set_exception(error)
                with self._cond:
                    self.stats.failed += len(shaped)
                continue
            with self._cond:
                self.stats.record_batch(len(shaped))
                self.stats.completed += len(shaped)
            for row, item in enumerate(shaped):
                if isinstance(outputs, dict):
                    item.future.set_result(
                        {name: np.asarray(value)[row] for name, value in outputs.items()}
                    )
                else:
                    item.future.set_result(np.asarray(outputs)[row])

    def _dispatch_loop(self) -> None:
        while True:
            batch = self._harvest()
            if batch is None:
                return
            if batch:
                self._run_batch(batch)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: Optional[float] = 5.0) -> None:
        """Stop accepting requests, flush the queue, stop the threads.

        Requests already submitted are still dispatched (the dispatchers
        drain the pending list before exiting); if they fail to drain
        within ``timeout`` — or anything is somehow left behind — the
        leftovers are *failed* with the named :class:`ShutdownError`,
        never silently dropped, so no future hangs forever.

        Idempotent and safe under concurrent callers: every caller
        returns only after the drain has completed (the second closer
        blocks until the first finishes, rather than returning while
        futures are still being resolved).
        """
        with self._close_lock:
            with self._cond:
                self._closed = True
                self._cond.notify_all()
            for thread in self._threads:
                thread.join(timeout=timeout)
            with self._cond:  # fail leftovers rather than strand their futures
                leftovers = self._pending
                self._pending = []
            for item in leftovers:
                if item.future.set_running_or_notify_cancel():
                    item.future.set_exception(
                        ShutdownError(
                            "DynamicBatcher closed with the request still queued"
                        )
                    )
                    with self._cond:
                        self.stats.failed += 1
                else:
                    with self._cond:
                        self.stats.cancelled += 1

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __enter__(self) -> "DynamicBatcher":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DynamicBatcher(max_batch_size={self.max_batch_size}, "
            f"max_queue_delay_ms={self.max_queue_delay * 1e3:g}, "
            f"max_queue_depth={self.max_queue_depth}, "
            f"requests={self.stats.requests}, batches={self.stats.batches})"
        )
