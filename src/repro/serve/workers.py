"""Worker processes for the replica cluster: protocol, handle, main loop.

One replica = one OS process owning a full single-process
:class:`~repro.serve.deployment.Deployment` (its own plan cache, arena
and split pipeline).  The parent talks to it over a duplex
``multiprocessing`` pipe with a tiny framed protocol:

========  =======================================  =========================
request   payload                                  reply
========  =======================================  =========================
infer     ``(seq, wire-encoded image batch)``      ``("ok", seq, {task: ndarray})``
ping      ``(nonce,)``                             ``("pong", nonce)``
stats     ``()``                                   ``("stats", dict)``
stop      ``()``                                   ``("bye",)`` then exit 0
========  =======================================  =========================

Image batches cross the pipe framed by the existing ``repro.serve`` wire
codec (:func:`~repro.deployment.wire.encode_tensor`) — the same
self-describing tensor frames ``Z_b`` uses on the simulated channel.  At
the micro-batch sizes the batcher dispatches, a pipe write of one codec
frame measured as fast as a ``shared_memory`` segment handoff on this
host (the copy is dwarfed by edge compute), so the simpler transport
won; the codec keeps the frame format shared with the wire layer either
way.

Worker-side *model* faults (the PR 6 ``FaultPlan``) keep working
unchanged: each worker's deployment injects its own channel faults.
Worker *process* faults (SIGKILL) are injected by the router from a
:class:`~repro.serve.faults.WorkerFaultPlan` — a killed worker gets no
chance to say goodbye, which is exactly the failure mode the supervisor
(:mod:`repro.serve.supervise`) exists to detect.

A replica that dies mid-request surfaces as :class:`WorkerDiedError` on
the parent's pipe (EOF/broken pipe) — the router's failover signal.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..deployment.wire import WireFormat, decode_tensor, encode_tensor

__all__ = ["WorkerDiedError", "WorkerHandle", "spawn_worker"]

#: Wire format used to frame image batches across the worker pipe.  The
#: parent re-encodes to float32 regardless of the deployment's Z_b wire
#: setting: the pipe is a local transport, not the modelled channel.
_PIPE_WIRE = WireFormat("float32")


class WorkerDiedError(RuntimeError):
    """The replica process died (or its pipe broke) mid-conversation.

    The router treats this as the failover trigger: the request is
    idempotent, so it re-dispatches to a healthy replica while the
    supervisor restarts the dead one.
    """


def _start_context() -> multiprocessing.context.BaseContext:
    """The cluster's process-start context.

    ``fork`` when the platform offers it (workers inherit the imported
    module tree, so restarts are fast — milliseconds, not a fresh
    interpreter plus numpy import); ``spawn`` otherwise.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _worker_main(conn, spec_payload: Dict[str, Any]) -> None:
    """Entry point of one replica process.

    Builds a single-process deployment from the serialised spec (with
    ``replicas`` forced to 1 — a worker must never recurse into a
    cluster) and serves the pipe protocol until told to stop or the
    parent disappears.
    """
    # Deliberately late imports: under the spawn start method this
    # function is the first thing the fresh interpreter runs.
    from .deployment import deploy
    from .spec import DeploymentSpec

    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent drives shutdown
    spec = DeploymentSpec.from_dict({**spec_payload, "replicas": 1})
    with deploy(spec) as deployment:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent died or hung up: exit quietly
            kind = message[0]
            if kind == "infer":
                seq, frame = message[1], message[2]
                try:
                    images = decode_tensor(frame)
                    logits = deployment.infer(images)
                    reply = ("ok", seq, {k: np.asarray(v) for k, v in logits.items()})
                except BaseException as error:  # report, keep serving
                    reply = ("err", seq, f"{type(error).__name__}: {error}")
                conn.send(reply)
            elif kind == "ping":
                conn.send(("pong", message[1]))
            elif kind == "stats":
                conn.send(("stats", _deployment_stats(deployment)))
            elif kind == "stop":
                conn.send(("bye",))
                break
            else:  # unknown message: loud, not silent
                conn.send(("err", None, f"unknown message kind {kind!r}"))
    conn.close()


def _deployment_stats(deployment) -> Dict[str, Any]:
    """Worker-side accounting snapshot shipped to the router on request."""
    traces = deployment.traces
    fault = deployment.fault_stats
    plan = deployment.pipeline._plan_accounting()
    spec_digest, plan_digest = deployment.provenance()
    return {
        "pid": os.getpid(),
        "spec_digest": spec_digest,
        "plan_digest": plan_digest,
        "batches": len(traces),
        "images": int(sum(t.batch_size for t in traces)),
        "edge_seconds": float(sum(t.edge_seconds for t in traces)),
        "transfer_seconds": float(sum(t.transfer_seconds for t in traces)),
        "server_seconds": float(sum(t.server_seconds for t in traces)),
        "plan": plan,
        "fault_stats": {
            "retries": fault.retries,
            "drops": fault.drops,
            "corruptions": fault.corruptions,
            "delays": fault.delays,
            "down_events": fault.down_events,
            "recoveries": fault.recoveries,
            "server_crashes": fault.server_crashes,
        },
        "fallback_batches": deployment.pipeline.fallback_batches,
        "fallback_seconds": deployment.pipeline.fallback_seconds,
        "degraded": deployment.degraded,
    }


class WorkerHandle:
    """Parent-side handle on one replica process.

    Owns the process object and the parent end of its pipe.  All pipe
    conversations go through :meth:`_roundtrip`, which converts a dead
    peer (EOF, broken pipe, closed connection) into
    :class:`WorkerDiedError` so callers see one failover signal instead
    of three flavours of OSError.  Handles are not thread-safe per call
    — the router leases a handle to exactly one dispatcher at a time.
    """

    def __init__(self, process, conn, slot: int, generation: int = 0):
        self.process = process
        self.conn = conn
        self.slot = slot                # replica position in the cluster
        self.generation = generation    # restarts of this slot before us
        self.dispatches = 0             # micro-batches served via this handle
        self.started_at = time.monotonic()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def is_alive(self) -> bool:
        return self.process.is_alive()

    # -- protocol ------------------------------------------------------
    def _roundtrip(self, message: Tuple, timeout: Optional[float] = None):
        try:
            self.conn.send(message)
            if timeout is not None and not self.conn.poll(timeout):
                raise WorkerDiedError(
                    f"replica {self.slot} (pid {self.pid}) did not answer "
                    f"{message[0]!r} within {timeout:g}s"
                )
            return self.conn.recv()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as error:
            raise WorkerDiedError(
                f"replica {self.slot} (pid {self.pid}) died mid-"
                f"{message[0]}: {type(error).__name__}"
            ) from None

    def begin_infer(self, images: np.ndarray) -> int:
        """Ship one micro-batch to the replica without waiting for the
        reply; returns the request sequence number.

        Split from :meth:`finish_infer` so the chaos injector can SIGKILL
        the replica *between* dispatch and completion — a true in-flight
        crash, the hardest failover case.
        """
        frame = encode_tensor(np.asarray(images, dtype=np.float32), _PIPE_WIRE)
        self.dispatches += 1
        seq = self.dispatches
        try:
            self.conn.send(("infer", seq, frame))
        except (BrokenPipeError, ConnectionResetError, OSError) as error:
            raise WorkerDiedError(
                f"replica {self.slot} (pid {self.pid}) died before dispatch: "
                f"{type(error).__name__}"
            ) from None
        return seq

    def finish_infer(
        self, seq: int, timeout: Optional[float] = None
    ) -> Dict[str, np.ndarray]:
        """Collect the reply for :meth:`begin_infer`'s request ``seq``."""
        try:
            if timeout is not None and not self.conn.poll(timeout):
                raise WorkerDiedError(
                    f"replica {self.slot} (pid {self.pid}) did not answer "
                    f"infer #{seq} within {timeout:g}s"
                )
            reply = self.conn.recv()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as error:
            raise WorkerDiedError(
                f"replica {self.slot} (pid {self.pid}) died mid-infer: "
                f"{type(error).__name__}"
            ) from None
        kind = reply[0]
        if kind == "ok":
            if reply[1] != seq:
                raise WorkerDiedError(
                    f"replica {self.slot} answered out of sequence "
                    f"({reply[1]} != {seq}); treating as dead"
                )
            return reply[2]
        raise RuntimeError(f"replica {self.slot} infer failed: {reply[2]}")

    def infer(self, images: np.ndarray, timeout: Optional[float] = None
              ) -> Dict[str, np.ndarray]:
        """Run one micro-batch on this replica; raises
        :class:`WorkerDiedError` if it dies mid-request."""
        seq = self.begin_infer(images)
        return self.finish_infer(seq, timeout=timeout)

    def ping(self, timeout: float = 1.0) -> bool:
        """One heartbeat round-trip; False (never an exception) on a
        dead or unresponsive replica."""
        nonce = self.dispatches + int(time.monotonic() * 1e3) % 1_000_000
        try:
            reply = self._roundtrip(("ping", nonce), timeout=timeout)
        except WorkerDiedError:
            return False
        return reply == ("pong", nonce)

    def stats(self, timeout: float = 5.0) -> Dict[str, Any]:
        reply = self._roundtrip(("stats",), timeout=timeout)
        if reply[0] != "stats":
            raise RuntimeError(f"replica {self.slot} bad stats reply: {reply!r}")
        return reply[1]

    # -- lifecycle -----------------------------------------------------
    def stop(self, timeout: float = 10.0) -> bool:
        """Graceful stop: ask, wait, then escalate.  True when the
        worker exited on its own; False when it had to be killed."""
        graceful = True
        try:
            self._roundtrip(("stop",), timeout=timeout)
        except (WorkerDiedError, RuntimeError):
            graceful = False
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # escalate: never leak a process
            graceful = False
            self.process.terminate()
            self.process.join(timeout=timeout)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=timeout)
        try:
            self.conn.close()
        except OSError:
            pass
        # Release the Process object's OS-level bookkeeping (semaphores,
        # sentinel fd) now rather than at GC time; also drops the child
        # from multiprocessing.active_children() — the orphan check.
        self.process.close()
        return graceful

    def kill(self) -> None:
        """SIGKILL the replica — the chaos path (no goodbye, no flush).

        Used by the router's :class:`~repro.serve.faults.WorkerFaultPlan`
        injection and by tests; detection and recovery are the
        supervisor's job.
        """
        if self.process.pid is not None and self.process.is_alive():
            os.kill(self.process.pid, signal.SIGKILL)

    def reap(self) -> None:
        """Join and release a replica already known to be dead."""
        self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass
        try:
            self.process.close()
        except ValueError:  # still somehow running: leave for stop()
            pass

    def __repr__(self) -> str:
        state = "alive" if self.is_alive() else "dead"
        return (
            f"WorkerHandle(slot={self.slot}, pid={self.pid}, "
            f"gen={self.generation}, {state})"
        )


def spawn_worker(
    spec_payload: Dict[str, Any], slot: int, generation: int = 0
) -> WorkerHandle:
    """Fork/spawn one replica process serving ``spec_payload``.

    Returns once the process is started (not once its deployment is
    built — the first ``infer``/``ping`` round-trip synchronises with
    readiness, so startup cost overlaps across replicas).
    """
    ctx = _start_context()
    parent_conn, child_conn = ctx.Pipe(duplex=True)
    process = ctx.Process(
        target=_worker_main,
        args=(child_conn, spec_payload),
        name=f"repro-serve-replica-{slot}",
        daemon=True,
    )
    process.start()
    child_conn.close()  # parent keeps only its end
    return WorkerHandle(process, parent_conn, slot=slot, generation=generation)
