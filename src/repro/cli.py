"""Command-line interface for the MTL-Split reproduction.

Exposes the analyses a user wants without writing code::

    python -m repro profile --backbone efficientnet_b0 --input-size 1024
    python -m repro paradigms --backbone mobilenet_v3_small --tasks 3
    python -m repro dataset --name shapes3d --samples 200
    python -m repro split-sweep --backbone mobilenet_v3_small --bandwidth-mbps 10
    python -m repro train --backbone mobilenet_v3_tiny --epochs 2
    python -m repro pipeline --backbone mobilenet_v3_tiny --batches 8

Training at the CLI uses the quick 32x32 stand-in workloads; the full
benchmark harness lives under ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["build_parser", "main"]


def _cmd_profile(args: argparse.Namespace) -> int:
    from .deployment import profile_backbone, render_table4, table4_rows
    from .models import get_spec

    if args.table4:
        rows = table4_rows([args.backbone], input_size=args.input_size)
        print(render_table4(rows))
        return 0
    profile = profile_backbone(
        get_spec(args.backbone), input_size=args.input_size, batch_size=args.batch_size
    )
    print(profile.summary())
    if args.layers:
        print(f"{'layer':<40}{'params':>12}{'out shape':>18}{'kFLOPs':>12}")
        for layer in profile.layers:
            print(
                f"{layer.name:<40}{layer.params:>12,}"
                f"{str(layer.out_shape):>18}{layer.flops / 1e3:>12.1f}"
            )
    return 0


def _cmd_paradigms(args: argparse.Namespace) -> int:
    from .deployment import (
        GIGABIT_ETHERNET,
        JETSON_NANO,
        RTX3090_SERVER,
        compare_paradigms,
        render_paradigm_comparison,
    )
    from .models import get_spec

    channel = (
        GIGABIT_ETHERNET.degraded(1000.0 / args.bandwidth_mbps)
        if args.bandwidth_mbps != 1000
        else GIGABIT_ETHERNET
    )
    reports = compare_paradigms(
        get_spec(args.backbone),
        args.tasks,
        JETSON_NANO,
        RTX3090_SERVER,
        channel,
        input_size=args.input_size,
    )
    print(render_paradigm_comparison(reports))
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    from . import data

    makers = {
        "shapes3d": lambda n: data.make_shapes3d(n, tasks=(), seed=args.seed),
        "medic": lambda n: data.make_medic(n, seed=args.seed),
        "faces": lambda n: data.make_faces(n, seed=args.seed),
    }
    if args.name not in makers:
        print(f"unknown dataset {args.name!r}; choose from {sorted(makers)}", file=sys.stderr)
        return 2
    dataset = makers[args.name](args.samples)
    print(data.dataset_summary(dataset))
    if args.export:
        data.save_image_grid(dataset.images[: args.grid], args.export)
        print(f"wrote {min(args.grid, len(dataset))}-image grid to {args.export}")
    return 0


def _cmd_split_sweep(args: argparse.Namespace) -> int:
    from .deployment import (
        GIGABIT_ETHERNET,
        JETSON_NANO,
        RTX3090_SERVER,
        latency_profile,
        optimal_split_index,
    )
    from .models import get_spec

    channel = (
        GIGABIT_ETHERNET.degraded(1000.0 / args.bandwidth_mbps)
        if args.bandwidth_mbps != 1000
        else GIGABIT_ETHERNET
    )
    spec = get_spec(args.backbone)
    profile = latency_profile(
        spec, JETSON_NANO, RTX3090_SERVER, channel, input_size=args.input_size
    )
    best = optimal_split_index(
        spec, JETSON_NANO, RTX3090_SERVER, channel, input_size=args.input_size
    )
    print(f"{'cut':>14}{'transmit':>12}{'edge ms':>10}{'net ms':>10}{'srv ms':>10}{'total ms':>10}")
    for point in profile:
        marker = "  <- optimal" if point.stage_index == best.stage_index else ""
        print(
            f"{point.stage_name:>14}{point.transmit_elements:>12,}"
            f"{point.edge_seconds * 1e3:>10.2f}{point.transfer_seconds * 1e3:>10.2f}"
            f"{point.server_seconds * 1e3:>10.2f}{point.total_seconds * 1e3:>10.2f}{marker}"
        )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from . import data
    from .core import MTLSplitNet, MultiTaskTrainer, TrainConfig, evaluate

    dataset = data.make_shapes3d(args.samples, tasks=("scale", "shape"), seed=args.seed)
    train, val, test = data.train_val_test_split(
        dataset, rng=np.random.default_rng(args.seed)
    )
    net = MTLSplitNet.from_tasks(
        args.backbone, list(train.tasks), input_size=32, seed=args.seed
    )
    config = TrainConfig(
        epochs=args.epochs, batch_size=args.batch_size, lr=args.lr,
        seed=args.seed, verbose=True,
    )
    MultiTaskTrainer(config).fit(net, train, val_set=val)
    accuracy = evaluate(net, test)
    for task, value in accuracy.items():
        print(f"test {task}: {value:.3f}")
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from . import data
    from .core import MTLSplitNet, MultiTaskTrainer, TrainConfig
    from .deployment import GIGABIT_ETHERNET, render_throughput
    from .serve import DeploymentSpec, deploy

    if args.batches < 1 or args.batch_size < 1:
        print("pipeline needs --batches >= 1 and --batch-size >= 1", file=sys.stderr)
        return 2
    if args.bandwidth_mbps <= 0:
        print("pipeline needs --bandwidth-mbps > 0", file=sys.stderr)
        return 2
    if args.num_workers < 1:
        print("pipeline needs --num-workers >= 1", file=sys.stderr)
        return 2
    channel = (
        GIGABIT_ETHERNET.degraded(1000.0 / args.bandwidth_mbps)
        if args.bandwidth_mbps != 1000
        else GIGABIT_ETHERNET
    )
    samples = args.batches * args.batch_size
    dataset = data.make_shapes3d(
        max(samples, 128), tasks=("scale", "shape"), seed=args.seed
    )
    net = MTLSplitNet.from_tasks(
        args.backbone, list(dataset.tasks), input_size=32, seed=args.seed
    )
    if args.epochs > 0:
        MultiTaskTrainer(
            TrainConfig(epochs=args.epochs, batch_size=64, seed=args.seed)
        ).fit(net, dataset)
    net.eval()
    spec = DeploymentSpec(
        model=net,
        input_size=32,
        split_index=args.split_index,
        wire=args.wire,
        channel=channel,
        compiled=not args.no_compiled,
        planned=not args.no_plan,
        num_workers=args.num_workers,
    )
    images = dataset.images[:samples]
    batches = [
        images[start : start + args.batch_size]
        for start in range(0, samples, args.batch_size)
    ]
    with deploy(spec) as deployment:
        deployment.warmup([args.batch_size])
        _, report = deployment.stream(batches)
        print(
            f"{args.backbone} @32px, {deployment.execution_mode} halves, "
            f"wire={args.wire}, {channel.name}, payload "
            f"{deployment.pipeline.mean_payload_bytes() / 1024:.1f} KiB/batch"
        )
    print(render_throughput(report))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from . import data
    from .core import MTLSplitNet
    from .nn.engine import ExecutionPlan

    if args.plan_command != "describe":  # pragma: no cover - argparse enforces
        print(f"unknown plan subcommand {args.plan_command!r}", file=sys.stderr)
        return 2
    if args.batch_size < 1:
        print("plan describe needs --batch-size >= 1", file=sys.stderr)
        return 2
    dataset = data.make_shapes3d(4, tasks=("scale", "shape"), seed=args.seed)
    net = MTLSplitNet.from_tasks(
        args.backbone, list(dataset.tasks), input_size=args.input_size,
        seed=args.seed,
    )
    net.eval()
    edge_model, server_model = net.split(args.split_index, input_size=args.input_size)
    edge_session = edge_model.compile_for_inference()
    batch_shape = (
        args.batch_size, net.backbone.spec.input_channels,
        args.input_size, args.input_size,
    )
    optimize = not args.no_optimize
    edge_plan = ExecutionPlan(edge_session, batch_shape, optimize=optimize)
    edge_ir = edge_plan.ir
    z_shape = edge_ir.values[edge_ir.outputs[None]].row_shape
    server_plan = ExecutionPlan(
        server_model.compile_for_inference(), z_shape, optimize=optimize
    )
    print(f"# edge half ({args.backbone} @{args.input_size}px, "
          f"batch {args.batch_size}, compute {args.compute})")
    if args.compute == "quant8":
        from .nn.engine.quant import QuantizedPlan

        print(QuantizedPlan(edge_plan).describe())
    else:
        print(edge_plan.describe())
    print()
    print("# server half")
    print(server_plan.describe())
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from .scenarios import (
        ScenarioError,
        available_scenarios,
        get_scenario,
        run_scenario,
        scenario_matrix,
    )

    if args.scenarios_command == "list":
        rows = scenario_matrix(tier=args.tier)
        if not rows:
            print(f"no scenarios in tier {args.tier!r}", file=sys.stderr)
            return 2
        print(f"{'name':<28}{'tier':<7}{'backbone':<20}{'input':>7}"
              f"{'batch':>7}{'wire':>9}  {'split':<7}{'channel'}")
        for scenario in rows:
            cut = scenario.split_index if scenario.split_index is not None else "paper"
            print(
                f"{scenario.name:<28}{scenario.tier:<7}{scenario.backbone:<20}"
                f"{scenario.input_size:>5}px{scenario.batches:>4}x{scenario.batch_size:<2}"
                f"{scenario.wire:>9}  {str(cut):<7}{scenario.channel}"
            )
        return 0

    try:
        scenario = get_scenario(args.name)
    except ScenarioError as error:
        print(str(error), file=sys.stderr)
        return 2

    if args.scenarios_command == "describe":
        if args.json:
            print(scenario.to_json())
        else:
            print(scenario.describe())
            if scenario.description:
                print(f"  {scenario.description}")
            print(f"  deployment: {scenario.deployment_spec().describe()}")
            print(f"  traffic: {scenario.batches} batches x {scenario.batch_size} "
                  f"images at {scenario.input_size}px "
                  f"({scenario.noise_amount:.0%} salt-and-pepper, seed {scenario.seed})")
        return 0

    # run
    from .deployment import render_throughput

    if args.batches is not None and args.batches < 1:
        print("scenarios run needs --batches >= 1", file=sys.stderr)
        return 2
    overrides = {}
    if args.no_optimize:
        overrides["optimize"] = False
    result = run_scenario(scenario, batches=args.batches, **overrides)
    report = result.report
    print(result.deployment_description)
    print(
        f"  edge {result.edge_ms:.2f} ms, transfer "
        f"{result.transfer_seconds * 1e3:.2f} ms (modelled, "
        f"{result.payload_bytes_per_batch / 1024:.1f} KiB/batch), "
        f"server {result.server_seconds * 1e3:.2f} ms"
    )
    print(
        f"  engine: {report.arena_bytes / 1024:.0f} KiB arena, "
        f"{report.steady_state_allocs} allocs/batch, "
        f"{report.fused_steps} fused epilogues, "
        f"{report.spmm_row_blocks} SpMM row blocks"
    )
    print(render_throughput(report))
    return 0


def _install_drain_handlers():
    """Route SIGTERM/SIGINT into a KeyboardInterrupt for graceful drain.

    The interrupt unwinds through the deployment's context manager, whose
    ``close()`` stops admissions, flushes the queue, and fails anything
    stranded with the named :class:`~repro.serve.batching.ShutdownError`
    — so a signalled ``repro serve`` drains and exits 0 instead of
    leaking futures or worker processes.  Returns an undo callable.
    """
    import signal as _signal

    def _raise_interrupt(signum, frame):
        raise KeyboardInterrupt

    try:
        previous = {
            _signal.SIGTERM: _signal.signal(_signal.SIGTERM, _raise_interrupt),
            _signal.SIGINT: _signal.signal(_signal.SIGINT, _raise_interrupt),
        }
    except ValueError:  # not the main thread: keep default delivery
        return lambda: None

    def _restore():
        for signum, handler in previous.items():
            _signal.signal(signum, handler)

    return _restore


def _cmd_attest(args: argparse.Namespace) -> int:
    """``repro attest record|verify`` — the golden-digest registry.

    Exit codes are CI-shaped: 0 every attestation matched (or was
    recorded), 1 at least one digest diverged or a golden is missing,
    2 usage errors (unknown scenario).
    """
    from .attest import AttestationError, record_goldens, verify_goldens
    from .scenarios import ScenarioError

    names = [args.scenario] if args.scenario else None
    try:
        if args.attest_command == "record":
            result = record_goldens(names=names, update=args.update)
        else:
            result = verify_goldens(names=names, host_gated=args.host_gated)
    except (ScenarioError, AttestationError) as error:
        print(str(error), file=sys.stderr)
        return 2
    print(result.describe())
    return 0 if result.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from .data.streams import ArrivalSpec
    from .deployment import GIGABIT_ETHERNET
    from .serve import (
        CachePolicy,
        ClusterSpec,
        DeploymentSpec,
        SpecError,
        WorkerFaultPlan,
        render_cache_bench,
        render_cluster_bench,
        render_overload_bench,
        render_serve_bench,
        run_cache_bench,
        run_cluster_bench,
        run_overload_bench,
        run_serve_bench,
    )

    try:
        client_counts = [int(part) for part in args.clients.split(",") if part]
    except ValueError:
        print(f"--clients must be comma-separated ints, got {args.clients!r}",
              file=sys.stderr)
        return 2
    if not client_counts or min(client_counts) < 1:
        print("serve needs --clients with values >= 1", file=sys.stderr)
        return 2
    if args.requests < 1:
        print("serve needs --requests >= 1", file=sys.stderr)
        return 2
    if args.bandwidth_mbps <= 0:
        print("serve needs --bandwidth-mbps > 0", file=sys.stderr)
        return 2
    arrival = None
    if args.arrival is not None:
        try:
            arrival = ArrivalSpec.from_string(args.arrival)
        except ValueError as error:
            print(f"bad --arrival spec: {error}", file=sys.stderr)
            return 2
    try:
        load_factors = [
            float(part) for part in args.load_factors.split(",") if part
        ]
    except ValueError:
        print(f"--load-factors must be comma-separated floats, got "
              f"{args.load_factors!r}", file=sys.stderr)
        return 2
    if not load_factors or min(load_factors) <= 0:
        print("serve needs --load-factors with values > 0", file=sys.stderr)
        return 2
    channel = (
        GIGABIT_ETHERNET.degraded(1000.0 / args.bandwidth_mbps)
        if args.bandwidth_mbps != 1000
        else GIGABIT_ETHERNET
    )
    split_index = args.split_index
    if split_index not in (None, "auto"):
        try:
            split_index = int(split_index)
        except ValueError:
            print(f"--split-index must be an int or 'auto', got {split_index!r}",
                  file=sys.stderr)
            return 2
    if args.replicas < 1:
        print("serve needs --replicas >= 1", file=sys.stderr)
        return 2
    worker_faults = None
    if args.worker_faults is not None:
        try:
            worker_faults = WorkerFaultPlan.from_string(args.worker_faults)
        except ValueError as error:
            print(f"bad --worker-faults spec: {error}", file=sys.stderr)
            return 2
    cache_policy = None
    if args.cache is not None:
        try:
            cache_policy = CachePolicy.from_string(args.cache)
        except ValueError as error:
            print(f"bad --cache spec: {error}", file=sys.stderr)
            return 2
    duplicate_rates = None
    if args.duplicate_rates is not None:
        try:
            duplicate_rates = [
                float(part)
                for part in args.duplicate_rates.split(",")
                if part
            ]
        except ValueError:
            print(f"--duplicate-rates must be comma-separated floats, got "
                  f"{args.duplicate_rates!r}", file=sys.stderr)
            return 2
        if not duplicate_rates or not all(
            0.0 <= rate <= 1.0 for rate in duplicate_rates
        ):
            print("serve needs --duplicate-rates with values in [0, 1]",
                  file=sys.stderr)
            return 2
    try:
        spec = DeploymentSpec(
            model=args.backbone,
            tasks=(("scale", 8), ("shape", 4)),
            input_size=args.input_size,
            split_index=split_index,
            wire=args.wire,
            channel=channel,
            num_workers=args.num_workers,
            max_batch_size=args.max_batch_size,
            max_queue_delay_ms=args.max_delay_ms,
            max_queue_depth=args.queue_depth,
            deadline_ms=args.deadline_ms,
            cache=cache_policy,
            replicas=args.replicas,
            seed=args.seed,
        )
    except SpecError as error:
        print(f"bad deployment spec: {error}", file=sys.stderr)
        return 2
    restore_signals = _install_drain_handlers()
    try:
        if args.replicas > 1 or worker_faults is not None:
            # Replica-cluster burst: N supervised worker processes, with
            # optional scheduled SIGKILL chaos (--worker-faults).
            try:
                cluster_spec = ClusterSpec(
                    deployment=spec, worker_faults=worker_faults
                )
            except SpecError as error:
                print(f"bad cluster spec: {error}", file=sys.stderr)
                return 2
            print(f"cluster bench: {cluster_spec.describe()}")
            result = run_cluster_bench(
                cluster_spec,
                requests=args.requests * max(client_counts),
                seed=args.seed,
            )
            print(render_cluster_bench(result))
        elif duplicate_rates is not None:
            # Duplicate-fraction sweep: cache-off vs cache-on deployments
            # driven back-to-back on identical popularity-shaped streams.
            print(f"cache bench: {spec.describe()}")
            result = run_cache_bench(
                spec,
                duplicate_rates=duplicate_rates,
                requests_per_point=args.requests * max(client_counts),
                seed=args.seed,
            )
            print(render_cache_bench(result))
        elif arrival is not None:
            # Open-loop overload sweep: requests arrive on the schedule
            # whether or not the server keeps up; admission control sheds.
            print(f"overload bench ({arrival.to_string()}): {spec.describe()}")
            result = run_overload_bench(
                spec,
                load_factors=load_factors,
                requests_per_point=args.requests * max(client_counts),
                arrival=arrival,
                seed=args.seed,
            )
            print(render_overload_bench(result))
        else:
            print(f"serving bench: {spec.describe()}")
            result = run_serve_bench(
                spec,
                client_counts=client_counts,
                requests_per_client=args.requests,
                seed=args.seed,
            )
            print(render_serve_bench(result))
    except KeyboardInterrupt:
        # The context managers inside the bench runners already drained:
        # admissions stopped, queued futures flushed, stragglers failed
        # with ShutdownError, workers joined.  A signalled serve is a
        # clean exit, not a crash.
        print("\ninterrupted: graceful drain complete "
              "(admissions stopped, queue flushed, stranded futures "
              "failed with ShutdownError)")
        return 0
    finally:
        restore_signals()
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
        print(f"wrote machine-readable result to {args.json}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="MTL-Split (DAC 2024) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("profile", help="analytic backbone profile (Table 4)")
    p.add_argument("--backbone", default="mobilenet_v3_small")
    p.add_argument("--input-size", type=int, default=224)
    p.add_argument("--batch-size", type=int, default=1)
    p.add_argument("--layers", action="store_true", help="print per-layer rows")
    p.add_argument("--table4", action="store_true", help="print Table-4 columns")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("paradigms", help="LoC / RoC / SC comparison (Sec. 4.2)")
    p.add_argument("--backbone", default="mobilenet_v3_small")
    p.add_argument("--tasks", type=int, default=2)
    p.add_argument("--input-size", type=int, default=1024)
    p.add_argument("--bandwidth-mbps", type=float, default=1000)
    p.set_defaults(func=_cmd_paradigms)

    p = sub.add_parser("dataset", help="generate and summarise a stand-in dataset")
    p.add_argument("--name", default="shapes3d")
    p.add_argument("--samples", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--export", help="write a PPM image grid to this path")
    p.add_argument("--grid", type=int, default=16, help="images in the exported grid")
    p.set_defaults(func=_cmd_dataset)

    p = sub.add_parser("split-sweep", help="per-cut latency sweep (Neurosurgeon)")
    p.add_argument("--backbone", default="mobilenet_v3_small")
    p.add_argument("--input-size", type=int, default=224)
    p.add_argument("--bandwidth-mbps", type=float, default=1000)
    p.set_defaults(func=_cmd_split_sweep)

    p = sub.add_parser(
        "pipeline", help="overlapped split-pipeline throughput (fused inference)"
    )
    p.add_argument("--backbone", default="mobilenet_v3_tiny")
    p.add_argument("--batches", type=int, default=8)
    p.add_argument("--batch-size", type=int, default=16)
    p.add_argument("--split-index", type=int, default=None)
    p.add_argument("--wire", default="float32",
                   choices=("float32", "float16", "quant8"))
    p.add_argument("--bandwidth-mbps", type=float, default=1000)
    p.add_argument("--epochs", type=int, default=1,
                   help="quick training epochs before deployment (0 = raw init)")
    p.add_argument("--no-compiled", action="store_true",
                   help="run the eval-mode forward instead of the fused engine")
    p.add_argument("--no-plan", action="store_true",
                   help="skip the arena-planned execution engine "
                        "(run the plain fused session)")
    p.add_argument("--num-workers", type=int, default=1,
                   help="batch shards run by the planned engine's thread pool")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_pipeline)

    p = sub.add_parser(
        "plan",
        help="inspect the engine's optimized execution plans",
    )
    plan_sub = p.add_subparsers(dest="plan_command", required=True)
    pd = plan_sub.add_parser(
        "describe",
        help="dump the optimized plan-IR (fused epilogues, elided copies, "
             "blocked SpMMs) for both pipeline halves",
    )
    pd.add_argument("--backbone", default="mobilenet_v3_tiny")
    pd.add_argument("--input-size", type=int, default=32)
    pd.add_argument("--batch-size", type=int, default=16)
    pd.add_argument("--split-index", type=int, default=None)
    pd.add_argument("--no-optimize", action="store_true",
                    help="show the straight-line lowering instead of the "
                         "optimized plan")
    pd.add_argument("--compute", choices=("float32", "quant8"),
                    default="float32",
                    help="numeric tier for the edge half (quant8 shows the "
                         "int8 overlay: quantized steps + fused requant "
                         "chains; scales calibrate on the first batch)")
    pd.add_argument("--seed", type=int, default=0)
    pd.set_defaults(func=_cmd_plan)

    p = sub.add_parser(
        "scenarios",
        help="the declarative workload registry (32px quick -> 224px hires)",
    )
    scn_sub = p.add_subparsers(dest="scenarios_command", required=True)
    sl = scn_sub.add_parser("list", help="list the registered scenario matrix")
    sl.add_argument("--tier", default=None,
                    help="restrict to one tier (quick / mid / hires)")
    sl.set_defaults(func=_cmd_scenarios)
    sd = scn_sub.add_parser(
        "describe", help="show one scenario's spec, deployment and traffic"
    )
    sd.add_argument("name", help="scenario name (see 'repro scenarios list')")
    sd.add_argument("--json", action="store_true",
                    help="print the round-trippable JSON spec instead")
    sd.set_defaults(func=_cmd_scenarios)
    sr = scn_sub.add_parser(
        "run", help="deploy a scenario and stream its synthetic traffic"
    )
    sr.add_argument("name", help="scenario name (see 'repro scenarios list')")
    sr.add_argument("--batches", type=int, default=None,
                    help="override the scenario's standard run length")
    sr.add_argument("--no-optimize", action="store_true",
                    help="bind the straight-line reference lowering instead "
                         "of the optimized plans")
    sr.set_defaults(func=_cmd_scenarios)

    p = sub.add_parser(
        "attest",
        help="golden-digest attestation: record/verify scenario provenance",
    )
    att_sub = p.add_subparsers(dest="attest_command", required=True)
    ar = att_sub.add_parser(
        "record",
        help="record golden attestations (default: quick + hires tiers)",
    )
    ar.add_argument("--scenario", default=None,
                    help="record one scenario instead of the default set")
    ar.add_argument("--update", action="store_true",
                    help="overwrite existing goldens (a reviewed, deliberate "
                         "act — see docs/benchmarking.md)")
    ar.set_defaults(func=_cmd_attest)
    av = att_sub.add_parser(
        "verify",
        help="recompute digests and diff them against the committed goldens",
    )
    av.add_argument("--scenario", default=None,
                    help="verify one scenario instead of every golden")
    av.add_argument("--host-gated", action="store_true",
                    help="also verify host-gated (hires) goldens")
    av.set_defaults(func=_cmd_attest)

    p = sub.add_parser(
        "serve",
        help="dynamic-batching serving benchmark (concurrent submit() load)",
    )
    p.add_argument("--backbone", default="mobilenet_v3_tiny")
    p.add_argument("--input-size", type=int, default=32)
    p.add_argument("--clients", default="1,8,64",
                   help="comma-separated concurrent client counts")
    p.add_argument("--requests", type=int, default=8,
                   help="requests per client (closed loop)")
    p.add_argument("--split-index", default=None,
                   help="backbone stages on the edge, or 'auto' for the "
                        "latency-optimal cut")
    p.add_argument("--wire", default="float32",
                   choices=("float32", "float16", "quant8"))
    p.add_argument("--bandwidth-mbps", type=float, default=1000)
    p.add_argument("--num-workers", type=int, default=1)
    p.add_argument("--max-batch-size", type=int, default=8,
                   help="dispatcher micro-batch cap")
    p.add_argument("--max-delay-ms", type=float, default=2.0,
                   help="longest wait for batch company once a request is queued")
    p.add_argument("--arrival", default=None, metavar="KIND[:K=V,...]",
                   help="switch to an open-loop overload sweep with this "
                        "arrival process, e.g. 'poisson:rate=200' or "
                        "'bursty:burst_factor=8' (rate is overridden per "
                        "load factor; see repro.data.streams.ArrivalSpec)")
    p.add_argument("--load-factors", default="0.25,0.5,1,2,4",
                   help="offered load as multiples of calibrated capacity "
                        "(open-loop mode only)")
    p.add_argument("--queue-depth", type=int, default=None,
                   help="bound the request queue; full-queue submissions "
                        "are shed with RejectedError")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="per-request queue deadline; late requests fail "
                        "with DeadlineExceededError")
    p.add_argument("--replicas", type=int, default=1,
                   help="worker processes; > 1 serves through the "
                        "supervised replica cluster (repro.serve.cluster)")
    p.add_argument("--worker-faults", default=None, metavar="K=V[,...]",
                   help="seeded SIGKILL schedule for replica chaos, e.g. "
                        "'at=2+5,seed=7' or 'rate=0.05,max=3,seed=1' "
                        "(see repro.serve.WorkerFaultPlan.from_string)")
    p.add_argument("--cache", default=None, metavar="TIER[:K=V,...]",
                   help="content-addressed serve cache policy, e.g. 'both', "
                        "'response:capacity=16777216,ttl=30', or 'off' "
                        "(see repro.serve.CachePolicy.from_string)")
    p.add_argument("--duplicate-rates", default=None,
                   help="switch to the cache bench: comma-separated "
                        "duplicate fractions in [0, 1] swept with "
                        "interleaved cache-off baselines, e.g. '0,0.5,0.9'")
    p.add_argument("--json", default=None, help="also write the result dict here")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("train", help="quick MTL training demo (32x32 stand-in)")
    p.add_argument("--backbone", default="mobilenet_v3_tiny")
    p.add_argument("--samples", type=int, default=800)
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--batch-size", type=int, default=64)
    p.add_argument("--lr", type=float, default=1e-2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_train)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
