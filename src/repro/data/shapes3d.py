"""Procedural stand-in for the 3D Shapes dataset (Burgess & Kim, 2018).

The real 3D Shapes dataset is itself synthetic: 480,000 renders generated
from six independent factors — floor hue (10), wall hue (10), object hue
(10), scale (8), shape (4) and orientation (15).  This module reproduces
that factor structure with a lightweight rasteriser: a floor plane, a wall
plane and a single centred object whose geometry encodes shape / scale /
orientation.  Classifying each factor is a separate task, exactly as the
paper treats the original dataset.

The paper's Table 1 uses ``T1 = object size`` (the 8-way scale factor) and
``T2 = object type`` (the 4-way shape factor), with 15 % salt-and-pepper
noise to make the problems non-trivial.  :func:`make_shapes3d` applies the
same corruption by default.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .base import MultiTaskDataset, TaskInfo
from .noise import salt_and_pepper
from .render import (
    blank_canvas,
    draw_hline_band,
    fill_circle,
    fill_ellipse,
    fill_rect,
    hsv_to_rgb,
    vertical_gradient,
)

__all__ = [
    "Shapes3DFactors",
    "Shapes3DGenerator",
    "make_shapes3d",
    "make_shapes3d_detection",
    "SHAPES3D_TASKS",
]

#: Factor cardinalities of the original dataset.
FACTOR_SIZES: Dict[str, int] = {
    "floor_hue": 10,
    "wall_hue": 10,
    "object_hue": 10,
    "scale": 8,
    "shape": 4,
    "orientation": 15,
}

SHAPES3D_TASKS: Tuple[TaskInfo, ...] = (
    TaskInfo("floor_hue", 10, "hue class of the floor plane"),
    TaskInfo("wall_hue", 10, "hue class of the wall plane"),
    TaskInfo("object_hue", 10, "hue class of the centred object"),
    TaskInfo("scale", 8, "object size class (paper's T1)"),
    TaskInfo("shape", 4, "object type class (paper's T2)"),
    TaskInfo("orientation", 15, "object rotation class"),
)

_SHAPE_NAMES = ("cube", "cylinder", "sphere", "capsule")


@dataclass(frozen=True)
class Shapes3DFactors:
    """One assignment of the six generative factors (class indices)."""

    floor_hue: int
    wall_hue: int
    object_hue: int
    scale: int
    shape: int
    orientation: int

    def as_labels(self) -> Dict[str, int]:
        return {
            "floor_hue": self.floor_hue,
            "wall_hue": self.wall_hue,
            "object_hue": self.object_hue,
            "scale": self.scale,
            "shape": self.shape,
            "orientation": self.orientation,
        }


class Shapes3DGenerator:
    """Deterministic renderer from factors to images.

    Parameters
    ----------
    image_size:
        Square output resolution (default 32).
    """

    def __init__(self, image_size: int = 32):
        if image_size < 16:
            raise ValueError("image_size must be >= 16 for the object to resolve")
        self.image_size = image_size
        self.horizon = int(image_size * 0.62)

    # ------------------------------------------------------------------
    def object_geometry(
        self, factors: Shapes3DFactors, offset: Tuple[float, float] = (0.0, 0.0)
    ) -> Tuple[float, float, float]:
        """Centre ``(cy, cx)`` and radius of the rendered object in pixels.

        ``offset`` shifts the object (fractions of the image size); the
        detection workload samples it to make localisation non-trivial.
        """
        size = self.image_size
        # Scale class 0..7 maps to radii covering ~12%..40% of the image.
        radius = size * (0.12 + 0.04 * factors.scale)
        cy = self.horizon - radius * 0.25 + offset[0] * size
        cx = size / 2.0 + offset[1] * size
        return cy, cx, radius

    def render(
        self, factors: Shapes3DFactors, offset: Tuple[float, float] = (0.0, 0.0)
    ) -> np.ndarray:
        """Render one ``(C, H, W)`` image in [0, 1] from factor classes."""
        size = self.image_size
        wall = hsv_to_rgb(factors.wall_hue / 10.0, 0.55, 0.85)
        floor = hsv_to_rgb(factors.floor_hue / 10.0, 0.6, 0.7)
        obj = hsv_to_rgb(factors.object_hue / 10.0, 0.85, 0.9)

        canvas = blank_canvas(size, size, wall)
        draw_hline_band(canvas, self.horizon, size, floor)

        cy, cx, radius = self.object_geometry(factors, offset)
        # Orientation class 0..14 maps to [-40 deg, +40 deg].
        angle = math.radians(-40.0 + 80.0 * factors.orientation / 14.0)
        self._draw_object(canvas, _SHAPE_NAMES[factors.shape], cy, cx, radius, angle, obj)
        vertical_gradient(canvas, 1.0, 0.88)
        return np.clip(canvas, 0.0, 1.0).transpose(2, 0, 1)

    def _draw_object(
        self,
        canvas: np.ndarray,
        shape: str,
        cy: float,
        cx: float,
        radius: float,
        angle: float,
        color: np.ndarray,
    ) -> None:
        shade = np.clip(color * 0.75, 0, 1)
        if shape == "cube":
            fill_rect(canvas, cy, cx, radius, radius, color, angle=angle)
            fill_rect(canvas, cy + radius * 0.45, cx, radius * 0.5, radius * 0.9, shade,
                      alpha=0.5, angle=angle)
        elif shape == "cylinder":
            fill_rect(canvas, cy, cx, radius, radius * 0.62, color, angle=angle)
            fill_ellipse(canvas, cy - radius * math.cos(angle), cx + radius * math.sin(angle),
                         radius * 0.28, radius * 0.62, shade, angle=angle)
        elif shape == "sphere":
            fill_circle(canvas, cy, cx, radius, color)
            # Orientation shows as a highlight position on the sphere.
            hy = cy - radius * 0.4 * math.cos(angle)
            hx = cx + radius * 0.4 * math.sin(angle)
            fill_circle(canvas, hy, hx, radius * 0.3, np.clip(color * 1.35, 0, 1), alpha=0.8)
        elif shape == "capsule":
            fill_ellipse(canvas, cy, cx, radius, radius * 0.55, color, angle=angle)
            fill_ellipse(canvas, cy, cx, radius * 0.55, radius * 0.3, shade, alpha=0.45,
                         angle=angle)
        else:  # pragma: no cover - guarded by _SHAPE_NAMES indexing
            raise ValueError(f"unknown shape {shape!r}")

    # ------------------------------------------------------------------
    def sample_factors(self, n: int, rng: np.random.Generator) -> list:
        """Draw ``n`` independent uniform factor assignments."""
        draws = {name: rng.integers(0, k, size=n) for name, k in FACTOR_SIZES.items()}
        return [
            Shapes3DFactors(
                int(draws["floor_hue"][i]),
                int(draws["wall_hue"][i]),
                int(draws["object_hue"][i]),
                int(draws["scale"][i]),
                int(draws["shape"][i]),
                int(draws["orientation"][i]),
            )
            for i in range(n)
        ]

    def generate(
        self,
        n: int,
        rng: Optional[np.random.Generator] = None,
        noise_amount: float = 0.15,
    ) -> MultiTaskDataset:
        """Generate a dataset of ``n`` images with all six factor labels."""
        rng = rng if rng is not None else np.random.default_rng(0)
        factor_list = self.sample_factors(n, rng)
        images = np.stack([self.render(f) for f in factor_list]) if n else np.zeros(
            (0, 3, self.image_size, self.image_size), dtype=np.float32
        )
        if noise_amount > 0 and n:
            images = salt_and_pepper(images, amount=noise_amount, rng=rng)
        labels = {
            name: np.array([getattr(f, name) for f in factor_list], dtype=np.int64)
            for name in FACTOR_SIZES
        }
        return MultiTaskDataset(images, labels, SHAPES3D_TASKS, name="shapes3d")


def make_shapes3d_detection(
    n: int,
    image_size: int = 32,
    noise_amount: float = 0.1,
    max_offset: float = 0.18,
    seed: int = 0,
) -> MultiTaskDataset:
    """The paper's motivating automotive pairing: classify + localise.

    One classification task (*shape*, "what is it") and one 3-D
    regression task (*bbox* = normalised centre-y, centre-x and radius,
    "where is it") on the same images — objects are randomly offset so
    localisation carries signal.
    """
    generator = Shapes3DGenerator(image_size=image_size)
    rng = np.random.default_rng(seed)
    factor_list = generator.sample_factors(n, rng)
    offsets = rng.uniform(-max_offset, max_offset, size=(n, 2))
    images = (
        np.stack(
            [
                generator.render(factors, offset=tuple(offsets[i]))
                for i, factors in enumerate(factor_list)
            ]
        )
        if n
        else np.zeros((0, 3, image_size, image_size), dtype=np.float32)
    )
    if noise_amount > 0 and n:
        images = salt_and_pepper(images, amount=noise_amount, rng=rng)
    boxes = np.zeros((n, 3), dtype=np.float32)
    for i, factors in enumerate(factor_list):
        cy, cx, radius = generator.object_geometry(factors, offset=tuple(offsets[i]))
        boxes[i] = (cy / image_size, cx / image_size, radius / image_size)
    tasks = (
        TaskInfo("shape", 4, "object type (classification)"),
        TaskInfo("bbox", 3, "normalised (cy, cx, r) of the object", kind="regression"),
    )
    labels = {
        "shape": np.array([f.shape for f in factor_list], dtype=np.int64),
        "bbox": boxes,
    }
    return MultiTaskDataset(images, labels, tasks, name="shapes3d-detection")


def make_shapes3d(
    n: int,
    image_size: int = 32,
    noise_amount: float = 0.15,
    tasks: Tuple[str, ...] = ("scale", "shape"),
    seed: int = 0,
) -> MultiTaskDataset:
    """Generate the paper's Table 1 workload.

    Defaults select ``T1 = scale`` (object size, 8 classes) and
    ``T2 = shape`` (object type, 4 classes) with 15 % salt-and-pepper
    noise, exactly the configuration of the paper's 3D Shapes experiment.
    """
    generator = Shapes3DGenerator(image_size=image_size)
    dataset = generator.generate(n, rng=np.random.default_rng(seed), noise_amount=noise_amount)
    return dataset.select_tasks(tasks) if tasks else dataset
