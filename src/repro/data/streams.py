"""Size-parameterized synthetic inference traffic — batches and arrivals.

The training-side generators (:func:`repro.data.make_shapes3d` and
friends) return labelled datasets at one resolution.  Serving and
benchmarking need something slightly different: *unlabelled* image
batches at an arbitrary resolution — including the 224px
high-resolution scenario tier — produced deterministically so two runs
(or an optimized pipeline and its same-run baseline) see byte-identical
traffic.

:func:`iter_image_batches` renders lazily (a 224px stream of many
batches should not materialise all at once); :func:`make_image_batches`
is the eager convenience wrapper the scenario runner and the benchmarks
use.

On top of *what* images arrive, this module also models *when* they
arrive.  The closed-loop clients of the serve bench wait for each
response before sending the next request, which can never push a
deployment past saturation; an **open-loop** workload fires requests on
a wall-clock schedule regardless of completions — the regime where
queues grow, deadlines slip and admission control earns its keep.
:class:`ArrivalSpec` describes such a schedule (Poisson, bursty
Markov-modulated, or diurnal rate-modulated arrivals), deterministically
seeded like every other generator here, and
:func:`make_request_stream` blends traffic from several image sources
into one timestamped request sequence.

Real traffic is not just clocked — it *repeats*.  The same image (a
stuck camera frame, a viral item, a dashboard polling one asset) shows
up again and again, which is exactly what the serve-side response and
feature caches exploit.  :class:`PopularitySpec` models *which* image a
request picks: ``uniform`` (the legacy draw), ``zipf`` (heavy-tailed
rank popularity, ``p(r) ∝ 1/r^s`` over a ``universe`` of ranks), and
``repeat`` (each draw duplicates an earlier one with probability
``rate`` — an exact dial for duplicate fraction).  Like
:class:`ArrivalSpec` it is frozen, deterministic and round-trips
exactly through ``to_string``/``from_string`` and dict/JSON forms, so a
bench artifact can name its traffic shape in one string, e.g.
``"zipf:s=1.1,universe=64"``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

import numpy as np

from .noise import salt_and_pepper
from .shapes3d import Shapes3DGenerator

__all__ = [
    "ARRIVAL_KINDS",
    "POPULARITY_KINDS",
    "ArrivalSpec",
    "PopularitySpec",
    "Request",
    "iter_image_batches",
    "make_image_batches",
    "make_request_stream",
]


def iter_image_batches(
    batches: int,
    batch_size: int,
    image_size: int = 32,
    noise_amount: float = 0.1,
    seed: int = 0,
) -> Iterator[np.ndarray]:
    """Yield ``batches`` arrays of shape ``(batch_size, 3, S, S)``.

    Images are rendered by the procedural 3D-Shapes rasteriser at
    ``image_size`` pixels with uniformly drawn factors, then corrupted
    with ``noise_amount`` salt-and-pepper noise (the paper's evaluation
    regime).  Fully determined by ``seed`` and the shape arguments.
    """
    # Validate eagerly (this is a plain function returning a generator,
    # not itself a generator) so bad arguments raise at the call site,
    # not at first iteration — or never, for an iterator that is dropped.
    if batches < 0:
        raise ValueError(f"batches must be >= 0, got {batches}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    generator = Shapes3DGenerator(image_size=image_size)

    def _render():
        rng = np.random.default_rng(seed)
        for _ in range(batches):
            factors = generator.sample_factors(batch_size, rng)
            images = np.stack([generator.render(f) for f in factors])
            if noise_amount > 0:
                images = salt_and_pepper(images, amount=noise_amount, rng=rng)
            yield np.ascontiguousarray(images, dtype=np.float32)

    return _render()


def make_image_batches(
    batches: int,
    batch_size: int,
    image_size: int = 32,
    noise_amount: float = 0.1,
    seed: int = 0,
) -> List[np.ndarray]:
    """Eager list form of :func:`iter_image_batches`."""
    return list(
        iter_image_batches(
            batches,
            batch_size,
            image_size=image_size,
            noise_amount=noise_amount,
            seed=seed,
        )
    )


# ---------------------------------------------------------------------------
# Open-loop arrival processes
# ---------------------------------------------------------------------------

#: Arrival process kinds :class:`ArrivalSpec` understands.
ARRIVAL_KINDS = ("poisson", "bursty", "diurnal")


@dataclass(frozen=True)
class ArrivalSpec:
    """One open-loop arrival schedule: *when* requests fire.

    ``sample(count)`` returns ``count`` strictly increasing arrival
    times in seconds from the start of the run, fully determined by the
    spec's fields — the same spec always produces the same schedule, so
    overload runs replay exactly.

    Parameters
    ----------
    kind:
        ``"poisson"`` — memoryless arrivals at ``rate_rps``;
        ``"bursty"`` — a two-state Markov-modulated Poisson process that
        alternates between a calm base rate and a ``burst_factor``-times
        hotter burst state while keeping the long-run mean at
        ``rate_rps``;
        ``"diurnal"`` — an inhomogeneous Poisson process whose rate
        swings sinusoidally around ``rate_rps`` (a whole day compressed
        into ``period_s`` seconds).
    rate_rps:
        Long-run mean arrival rate, requests per second.
    burst_factor / burst_fraction / dwell_s:
        Bursty only: the burst state runs ``burst_factor``x hotter than
        the base state, occupies ``burst_fraction`` of time in the long
        run, and lasts ``dwell_s`` seconds on average per visit.
    period_s / amplitude:
        Diurnal only: modulation period and relative depth in ``[0, 1]``
        (``0.8`` swings between 0.2x and 1.8x the mean rate).
    seed:
        RNG seed; schedules are pure functions of (fields, seed).
    """

    kind: str = "poisson"
    rate_rps: float = 100.0
    burst_factor: float = 8.0
    burst_fraction: float = 0.1
    dwell_s: float = 0.25
    period_s: float = 10.0
    amplitude: float = 0.8
    seed: int = 0

    def __post_init__(self):
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"arrival kind must be one of {ARRIVAL_KINDS}, got {self.kind!r}"
            )
        object.__setattr__(self, "rate_rps", float(self.rate_rps))
        if not self.rate_rps > 0:
            raise ValueError(f"rate_rps must be > 0, got {self.rate_rps}")
        for attr in ("burst_factor", "burst_fraction", "dwell_s", "period_s",
                     "amplitude"):
            object.__setattr__(self, attr, float(getattr(self, attr)))
        if self.burst_factor < 1.0:
            raise ValueError(f"burst_factor must be >= 1, got {self.burst_factor}")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError(
                f"burst_fraction must be in (0, 1), got {self.burst_fraction}"
            )
        if self.dwell_s <= 0:
            raise ValueError(f"dwell_s must be > 0, got {self.dwell_s}")
        if self.period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {self.period_s}")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError(f"amplitude must be in [0, 1], got {self.amplitude}")

    # -- sampling ------------------------------------------------------
    def sample(self, count: int) -> np.ndarray:
        """``count`` strictly increasing arrival times (seconds)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return np.zeros(0, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        if self.kind == "poisson":
            gaps = rng.exponential(1.0 / self.rate_rps, size=count)
            return np.cumsum(gaps)
        if self.kind == "bursty":
            return self._sample_bursty(rng, count)
        return self._sample_diurnal(rng, count)

    def _sample_bursty(self, rng: np.random.Generator, count: int) -> np.ndarray:
        # Two-state MMPP.  Rates chosen so the long-run mean is rate_rps:
        # (1 - f) * base + f * burst = rate, burst = factor * base.
        f = self.burst_fraction
        base_rate = self.rate_rps / ((1.0 - f) + f * self.burst_factor)
        burst_rate = self.burst_factor * base_rate
        # Mean dwell times whose stationary occupancy is f in the burst
        # state: dwell_burst / (dwell_burst + dwell_base) = f.
        dwell_burst = self.dwell_s
        dwell_base = dwell_burst * (1.0 - f) / f
        times: List[float] = []
        t = 0.0
        in_burst = False  # start calm; the seed controls everything else
        while len(times) < count:
            dwell = rng.exponential(dwell_burst if in_burst else dwell_base)
            rate = burst_rate if in_burst else base_rate
            end = t + dwell
            while len(times) < count:
                t += rng.exponential(1.0 / rate)
                if t >= end:
                    t = end  # unused arrival beyond the state boundary
                    break
                times.append(t)
            in_burst = not in_burst
        return np.asarray(times, dtype=np.float64)

    def _sample_diurnal(self, rng: np.random.Generator, count: int) -> np.ndarray:
        # Inhomogeneous Poisson by thinning against the peak rate.
        peak = self.rate_rps * (1.0 + self.amplitude)
        times: List[float] = []
        t = 0.0
        while len(times) < count:
            t += rng.exponential(1.0 / peak)
            rate = self.rate_rps * (
                1.0 + self.amplitude * np.sin(2.0 * np.pi * t / self.period_s)
            )
            if rng.random() * peak <= rate:
                times.append(t)
        return np.asarray(times, dtype=np.float64)

    def mean_rate(self) -> float:
        """The schedule's long-run request rate (requests/second)."""
        return self.rate_rps

    def scaled(self, factor: float) -> "ArrivalSpec":
        """The same process shape at ``factor``x the mean rate.

        Offered-load sweeps use this to push one traffic shape through a
        range of intensities without re-describing it.
        """
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor}")
        return replace(self, rate_rps=self.rate_rps * factor)

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArrivalSpec":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown ArrivalSpec keys {unknown}; known keys: {sorted(known)}"
            )
        return cls(**dict(data))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ArrivalSpec":
        return cls.from_dict(json.loads(text))

    # -- CLI / scenario string form ------------------------------------
    def to_string(self) -> str:
        """Compact ``kind:key=value,...`` form (inverse of
        :meth:`from_string`); only non-default fields are listed."""
        default = ArrivalSpec(kind=self.kind)
        parts = []
        for f in fields(self):
            if f.name == "kind":
                continue
            value = getattr(self, f.name)
            if value != getattr(default, f.name):
                short = "rate" if f.name == "rate_rps" else f.name
                # repr() is the shortest exact float form: to_string /
                # from_string must round-trip losslessly, and %g would
                # truncate to 6 significant digits.
                parts.append(f"{short}={value!r}")
        return self.kind + (":" + ",".join(parts) if parts else "")

    @classmethod
    def from_string(cls, text: str) -> "ArrivalSpec":
        """Parse ``"poisson:rate=200"`` / ``"bursty:rate=50,seed=3"``.

        The part before ``:`` is the kind; the rest is comma-separated
        ``key=value`` pairs (``rate`` aliases ``rate_rps``).
        """
        if not isinstance(text, str) or not text.strip():
            raise ValueError(f"arrival spec must be a non-empty string, got {text!r}")
        head, _, tail = text.strip().partition(":")
        payload: Dict[str, Any] = {"kind": head.strip()}
        int_fields = {"seed"}
        for part in filter(None, (p.strip() for p in tail.split(","))):
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(
                    f"arrival spec parts must be key=value, got {part!r} in {text!r}"
                )
            key = key.strip()
            if key == "rate":
                key = "rate_rps"
            try:
                payload[key] = int(value) if key in int_fields else float(value)
            except ValueError:
                raise ValueError(
                    f"arrival spec value for {key!r} must be numeric, got {value!r}"
                ) from None
        return cls.from_dict(payload)


# ---------------------------------------------------------------------------
# Which image a request picks: popularity models
# ---------------------------------------------------------------------------

#: Image-popularity kinds :class:`PopularitySpec` understands.
POPULARITY_KINDS = ("uniform", "zipf", "repeat")


@dataclass(frozen=True)
class PopularitySpec:
    """How requests choose images from a pool — the duplicate dial.

    The arrival process says *when* requests fire;  this spec says
    *which* image each one carries, which decides how much a
    content-addressed cache can possibly help.  Three kinds:

    ``"uniform"``
        Every draw is independent and uniform over the pool — the
        legacy :func:`make_request_stream` behaviour (and its exact RNG
        sequence).
    ``"zipf"``
        Heavy-tailed rank popularity: rank ``r`` in ``1..universe`` is
        drawn with probability proportional to ``1 / r**s``, then mapped
        onto the pool by ``(r - 1) % pool_size``.  A small ``universe``
        against a large pool concentrates traffic on a few images — the
        classic web/CDN regime caches are built for.
    ``"repeat"``
        Each draw repeats a uniformly chosen *earlier* draw with
        probability ``rate``; otherwise it takes the next not-yet-seen
        pool image (sequentially).  ``rate`` is therefore an exact
        expected duplicate fraction — ``rate=0`` yields zero duplicates
        while the pool lasts, ``rate=0.9`` yields ~90% cache-hittable
        traffic.

    Draws are stateful per source pool (``repeat`` needs its history),
    so :func:`make_request_stream` holds one ``state`` dict per source
    and calls :meth:`draw`.  Fully deterministic given the stream's RNG.
    """

    kind: str = "uniform"
    s: float = 1.1
    universe: int = 64
    rate: float = 0.5

    def __post_init__(self):
        if self.kind not in POPULARITY_KINDS:
            raise ValueError(
                f"popularity kind must be one of {POPULARITY_KINDS}, "
                f"got {self.kind!r}"
            )
        object.__setattr__(self, "s", float(self.s))
        object.__setattr__(self, "universe", int(self.universe))
        object.__setattr__(self, "rate", float(self.rate))
        if self.s <= 0:
            raise ValueError(f"s must be > 0, got {self.s}")
        if self.universe < 1:
            raise ValueError(f"universe must be >= 1, got {self.universe}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")

    # -- sampling ------------------------------------------------------
    def _zipf_probabilities(self) -> np.ndarray:
        ranks = np.arange(1, self.universe + 1, dtype=np.float64)
        raw = ranks ** -self.s
        return raw / raw.sum()

    def draw(self, rng: np.random.Generator, pool_size: int,
             state: Dict[str, Any]) -> int:
        """The next image index for a pool of ``pool_size`` images.

        ``state`` is an initially-empty dict the caller keeps per pool;
        ``repeat`` stores its draw history there, ``zipf`` caches its
        probability vector.
        """
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if self.kind == "uniform":
            return int(rng.integers(pool_size))
        if self.kind == "zipf":
            probabilities = state.get("p")
            if probabilities is None:
                probabilities = state["p"] = self._zipf_probabilities()
            rank = int(rng.choice(self.universe, p=probabilities))
            return rank % pool_size
        # repeat: duplicate an earlier draw with probability `rate`,
        # otherwise take the next not-yet-seen pool image.  Fresh draws
        # are sequential (not uniform) so rate=0 really means 0%
        # duplicates until the pool is exhausted.
        history: List[int] = state.setdefault("history", [])
        if history and float(rng.random()) < self.rate:
            index = history[int(rng.integers(len(history)))]
        else:
            fresh = state.get("next_fresh", 0)
            index = fresh % pool_size
            state["next_fresh"] = fresh + 1
        history.append(index)
        return index

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PopularitySpec":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown PopularitySpec keys {unknown}; "
                f"known keys: {sorted(known)}"
            )
        return cls(**dict(data))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PopularitySpec":
        return cls.from_dict(json.loads(text))

    # -- CLI / scenario string form ------------------------------------
    def to_string(self) -> str:
        """Compact ``kind:key=value,...`` form (inverse of
        :meth:`from_string`); only non-default fields are listed."""
        default = PopularitySpec(kind=self.kind)
        parts = []
        for f in fields(self):
            if f.name == "kind":
                continue
            value = getattr(self, f.name)
            if value != getattr(default, f.name):
                # repr() floats round-trip exactly (same contract as
                # ArrivalSpec.to_string).
                parts.append(f"{f.name}={value!r}")
        return self.kind + (":" + ",".join(parts) if parts else "")

    @classmethod
    def from_string(cls, text: str) -> "PopularitySpec":
        """Parse ``"zipf:s=1.1,universe=64"`` / ``"repeat:rate=0.9"``."""
        if not isinstance(text, str) or not text.strip():
            raise ValueError(
                f"popularity spec must be a non-empty string, got {text!r}"
            )
        head, _, tail = text.strip().partition(":")
        payload: Dict[str, Any] = {"kind": head.strip()}
        int_fields = {"universe"}
        for part in filter(None, (p.strip() for p in tail.split(","))):
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(
                    f"popularity spec parts must be key=value, "
                    f"got {part!r} in {text!r}"
                )
            key = key.strip()
            try:
                payload[key] = (
                    int(value) if key in int_fields else float(value)
                )
            except ValueError:
                raise ValueError(
                    f"popularity spec value for {key!r} must be numeric, "
                    f"got {value!r}"
                ) from None
        return cls.from_dict(payload)


# ---------------------------------------------------------------------------
# Mixed-source open-loop request streams
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Request:
    """One open-loop request: an image due at ``arrival_s`` seconds."""

    arrival_s: float
    image: np.ndarray
    source: str = "default"


def make_request_stream(
    arrival: ArrivalSpec,
    sources: Mapping[str, Sequence[np.ndarray]],
    count: int,
    weights: Optional[Mapping[str, float]] = None,
    seed: Optional[int] = None,
    popularity: Union[str, Mapping[str, Any], "PopularitySpec", None] = None,
) -> List[Request]:
    """Blend several image sources into one timestamped request stream.

    ``sources`` maps a name to a pool of single images (no batch axis);
    each request draws its source by ``weights`` (uniform over sources
    when omitted) and an image from that source's pool according to
    ``popularity`` (a :class:`PopularitySpec`, its string or dict form,
    or ``None`` for the legacy uniform draw — bit-for-bit the same
    stream as before this knob existed) — all deterministically from
    ``seed`` (default: the arrival spec's seed), so the blend replays
    exactly.  Sources may have different image shapes; downstream
    shape-grouped batching handles the mix.
    """
    if not sources:
        raise ValueError("sources must be non-empty")
    names = sorted(sources)
    for name in names:
        if len(sources[name]) == 0:
            raise ValueError(f"source {name!r} has no images")
    if weights is None:
        probabilities = np.full(len(names), 1.0 / len(names))
    else:
        unknown = sorted(set(weights) - set(names))
        if unknown:
            raise ValueError(f"weights name unknown sources {unknown}")
        raw = np.asarray([float(weights.get(name, 0.0)) for name in names])
        if (raw < 0).any() or raw.sum() <= 0:
            raise ValueError(f"weights must be non-negative and sum > 0, got {weights}")
        probabilities = raw / raw.sum()
    if popularity is None:
        popularity = PopularitySpec()  # uniform: the exact legacy draws
    elif isinstance(popularity, str):
        popularity = PopularitySpec.from_string(popularity)
    elif isinstance(popularity, Mapping):
        popularity = PopularitySpec.from_dict(popularity)
    elif not isinstance(popularity, PopularitySpec):
        raise TypeError(
            "popularity must be a PopularitySpec, its string/dict form, "
            f"or None, got {type(popularity).__name__}"
        )
    times = arrival.sample(count)
    rng = np.random.default_rng(arrival.seed if seed is None else seed)
    choices = rng.choice(len(names), size=count, p=probabilities)
    states: Dict[str, Dict[str, Any]] = {name: {} for name in names}
    requests = []
    for arrival_s, choice in zip(times, choices):
        name = names[int(choice)]
        pool = sources[name]
        image = pool[popularity.draw(rng, len(pool), states[name])]
        requests.append(Request(float(arrival_s), image, name))
    return requests
