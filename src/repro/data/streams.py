"""Size-parameterized synthetic inference traffic.

The training-side generators (:func:`repro.data.make_shapes3d` and
friends) return labelled datasets at one resolution.  Serving and
benchmarking need something slightly different: *unlabelled* image
batches at an arbitrary resolution — including the 224px
high-resolution scenario tier — produced deterministically so two runs
(or an optimized pipeline and its same-run baseline) see byte-identical
traffic.

:func:`iter_image_batches` renders lazily (a 224px stream of many
batches should not materialise all at once); :func:`make_image_batches`
is the eager convenience wrapper the scenario runner and the benchmarks
use.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from .noise import salt_and_pepper
from .shapes3d import Shapes3DGenerator

__all__ = ["iter_image_batches", "make_image_batches"]


def iter_image_batches(
    batches: int,
    batch_size: int,
    image_size: int = 32,
    noise_amount: float = 0.1,
    seed: int = 0,
) -> Iterator[np.ndarray]:
    """Yield ``batches`` arrays of shape ``(batch_size, 3, S, S)``.

    Images are rendered by the procedural 3D-Shapes rasteriser at
    ``image_size`` pixels with uniformly drawn factors, then corrupted
    with ``noise_amount`` salt-and-pepper noise (the paper's evaluation
    regime).  Fully determined by ``seed`` and the shape arguments.
    """
    # Validate eagerly (this is a plain function returning a generator,
    # not itself a generator) so bad arguments raise at the call site,
    # not at first iteration — or never, for an iterator that is dropped.
    if batches < 0:
        raise ValueError(f"batches must be >= 0, got {batches}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    generator = Shapes3DGenerator(image_size=image_size)

    def _render():
        rng = np.random.default_rng(seed)
        for _ in range(batches):
            factors = generator.sample_factors(batch_size, rng)
            images = np.stack([generator.render(f) for f in factors])
            if noise_amount > 0:
                images = salt_and_pepper(images, amount=noise_amount, rng=rng)
            yield np.ascontiguousarray(images, dtype=np.float32)

    return _render()


def make_image_batches(
    batches: int,
    batch_size: int,
    image_size: int = 32,
    noise_amount: float = 0.1,
    seed: int = 0,
) -> List[np.ndarray]:
    """Eager list form of :func:`iter_image_batches`."""
    return list(
        iter_image_batches(
            batches,
            batch_size,
            image_size=image_size,
            noise_amount=noise_amount,
            seed=seed,
        )
    )
