"""``repro.data`` — multi-task dataset substrates.

Synthetic, offline-generable stand-ins for the three datasets of the
paper's evaluation: a procedural 3D-Shapes renderer (the original is
itself synthetic), a MEDIC-like disaster-scene generator and a FACES-like
face-sketch generator, plus the dataset/loader plumbing and the paper's
salt-and-pepper corruption.
"""

from .base import MultiTaskDataset, TaskInfo, train_val_test_split
from .faces import FACES_TASKS, FaceSketchGenerator, make_faces
from .io import dataset_summary, label_distribution, save_image_grid, save_ppm
from .loader import DataLoader
from .medic import MEDIC_TASKS, MedicSceneGenerator, make_medic
from .noise import gaussian_noise, random_occlusion, salt_and_pepper
from .shapes3d import (
    SHAPES3D_TASKS,
    Shapes3DFactors,
    Shapes3DGenerator,
    make_shapes3d,
    make_shapes3d_detection,
)
from .streams import (
    ArrivalSpec,
    PopularitySpec,
    iter_image_batches,
    make_image_batches,
    make_request_stream,
)
from .transforms import (
    compute_mean_std,
    denormalize,
    normalize,
    random_horizontal_flip,
)

__all__ = [
    "MultiTaskDataset",
    "TaskInfo",
    "train_val_test_split",
    "DataLoader",
    "Shapes3DGenerator",
    "Shapes3DFactors",
    "make_shapes3d",
    "make_shapes3d_detection",
    "SHAPES3D_TASKS",
    "ArrivalSpec",
    "PopularitySpec",
    "iter_image_batches",
    "make_image_batches",
    "make_request_stream",
    "MedicSceneGenerator",
    "make_medic",
    "MEDIC_TASKS",
    "FaceSketchGenerator",
    "make_faces",
    "FACES_TASKS",
    "salt_and_pepper",
    "gaussian_noise",
    "random_occlusion",
    "normalize",
    "denormalize",
    "compute_mean_std",
    "random_horizontal_flip",
    "save_ppm",
    "save_image_grid",
    "label_distribution",
    "dataset_summary",
]
