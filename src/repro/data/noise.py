"""Image corruption utilities.

The paper (Sec. 4, Datasets): *"to render this setting more realistic, we
add salt-and-pepper noise of 15% of the image pixels, making the
classification more difficult."*  :func:`salt_and_pepper` implements that
corruption; Gaussian noise and occlusion are provided for robustness
ablations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["salt_and_pepper", "gaussian_noise", "random_occlusion"]


def salt_and_pepper(
    images: np.ndarray,
    amount: float = 0.15,
    salt_ratio: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Corrupt a fraction ``amount`` of pixels to pure white or black.

    Operates on ``(N, C, H, W)`` or ``(C, H, W)`` arrays; the corruption
    mask is shared across channels so noisy pixels look white/black rather
    than coloured, matching the classic corruption.
    """
    if not 0.0 <= amount <= 1.0:
        raise ValueError(f"amount must be in [0, 1], got {amount}")
    rng = rng if rng is not None else np.random.default_rng(0)
    out = np.array(images, dtype=np.float32, copy=True)
    single = out.ndim == 3
    if single:
        out = out[None]
    n, _, h, w = out.shape
    noise = rng.random((n, h, w))
    salt = noise < amount * salt_ratio
    pepper = (noise >= amount * salt_ratio) & (noise < amount)
    out[np.broadcast_to(salt[:, None], out.shape)] = 1.0
    out[np.broadcast_to(pepper[:, None], out.shape)] = 0.0
    return out[0] if single else out


def gaussian_noise(
    images: np.ndarray,
    std: float = 0.05,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Add clipped Gaussian noise."""
    rng = rng if rng is not None else np.random.default_rng(0)
    noisy = images + rng.normal(0.0, std, size=images.shape).astype(np.float32)
    return np.clip(noisy, 0.0, 1.0)


def random_occlusion(
    images: np.ndarray,
    max_fraction: float = 0.25,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Black out one random rectangle per image (cutout-style)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    out = np.array(images, dtype=np.float32, copy=True)
    single = out.ndim == 3
    if single:
        out = out[None]
    n, _, h, w = out.shape
    for i in range(n):
        bh = int(h * max_fraction * rng.random()) + 1
        bw = int(w * max_fraction * rng.random()) + 1
        y0 = int(rng.integers(0, h - bh + 1))
        x0 = int(rng.integers(0, w - bw + 1))
        out[i, :, y0 : y0 + bh, x0 : x0 + bw] = 0.0
    return out[0] if single else out
