"""Vectorised 2-D rasterisation helpers for the synthetic dataset generators.

All functions draw into ``(H, W, 3)`` float arrays with values in
``[0, 1]``.  The generators in :mod:`repro.data.shapes3d`,
:mod:`repro.data.medic` and :mod:`repro.data.faces` compose these
primitives to produce images whose labels depend on controllable factors —
the property the paper's multi-task experiments rely on.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = [
    "blank_canvas",
    "hsv_to_rgb",
    "coordinate_grid",
    "fill_region",
    "fill_circle",
    "fill_ellipse",
    "fill_rect",
    "fill_polygon",
    "draw_hline_band",
    "vertical_gradient",
]


def blank_canvas(height: int, width: int, color: Tuple[float, float, float] = (0, 0, 0)) -> np.ndarray:
    """Return an ``(H, W, 3)`` canvas filled with ``color``."""
    canvas = np.empty((height, width, 3), dtype=np.float32)
    canvas[...] = np.asarray(color, dtype=np.float32)
    return canvas


def hsv_to_rgb(h: float, s: float, v: float) -> np.ndarray:
    """Convert one HSV triple (h in [0,1)) to an RGB float triple."""
    h = (h % 1.0) * 6.0
    i = int(h)
    f = h - i
    p = v * (1.0 - s)
    q = v * (1.0 - s * f)
    t = v * (1.0 - s * (1.0 - f))
    rgb = [
        (v, t, p),
        (q, v, p),
        (p, v, t),
        (p, q, v),
        (t, p, v),
        (v, p, q),
    ][i % 6]
    return np.asarray(rgb, dtype=np.float32)


def coordinate_grid(height: int, width: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(yy, xx)`` index grids of shape ``(H, W)``."""
    return np.mgrid[0:height, 0:width].astype(np.float32)


def fill_region(canvas: np.ndarray, mask: np.ndarray, color, alpha: float = 1.0) -> None:
    """Blend ``color`` into ``canvas`` where ``mask`` is true."""
    color = np.asarray(color, dtype=np.float32)
    if alpha >= 1.0:
        canvas[mask] = color
    else:
        canvas[mask] = (1.0 - alpha) * canvas[mask] + alpha * color


def fill_circle(canvas: np.ndarray, cy: float, cx: float, radius: float, color, alpha: float = 1.0) -> None:
    """Draw a filled circle."""
    yy, xx = coordinate_grid(*canvas.shape[:2])
    mask = (yy - cy) ** 2 + (xx - cx) ** 2 <= radius**2
    fill_region(canvas, mask, color, alpha)


def fill_ellipse(
    canvas: np.ndarray,
    cy: float,
    cx: float,
    ry: float,
    rx: float,
    color,
    alpha: float = 1.0,
    angle: float = 0.0,
) -> None:
    """Draw a filled (optionally rotated) ellipse."""
    yy, xx = coordinate_grid(*canvas.shape[:2])
    dy, dx = yy - cy, xx - cx
    if angle:
        cos_a, sin_a = math.cos(angle), math.sin(angle)
        dy, dx = cos_a * dy - sin_a * dx, sin_a * dy + cos_a * dx
    mask = (dy / max(ry, 1e-6)) ** 2 + (dx / max(rx, 1e-6)) ** 2 <= 1.0
    fill_region(canvas, mask, color, alpha)


def fill_rect(
    canvas: np.ndarray,
    cy: float,
    cx: float,
    half_h: float,
    half_w: float,
    color,
    alpha: float = 1.0,
    angle: float = 0.0,
) -> None:
    """Draw a filled (optionally rotated) axis-centred rectangle."""
    yy, xx = coordinate_grid(*canvas.shape[:2])
    dy, dx = yy - cy, xx - cx
    if angle:
        cos_a, sin_a = math.cos(angle), math.sin(angle)
        dy, dx = cos_a * dy - sin_a * dx, sin_a * dy + cos_a * dx
    mask = (np.abs(dy) <= half_h) & (np.abs(dx) <= half_w)
    fill_region(canvas, mask, color, alpha)


def fill_polygon(canvas: np.ndarray, vertices: np.ndarray, color, alpha: float = 1.0) -> None:
    """Draw a filled convex polygon given ``(K, 2)`` ``(y, x)`` vertices.

    Uses half-plane intersection; the polygon must be convex.  Either
    winding order is accepted (the shoelace sign normalises it).
    """
    vertices = np.asarray(vertices, dtype=np.float32)
    ys, xs = vertices[:, 0], vertices[:, 1]
    signed_area = float(
        np.sum(xs * np.roll(ys, -1) - np.roll(xs, -1) * ys)
    )
    if signed_area < 0:
        vertices = vertices[::-1]
    yy, xx = coordinate_grid(*canvas.shape[:2])
    mask = np.ones(canvas.shape[:2], dtype=bool)
    k = len(vertices)
    for i in range(k):
        y0, x0 = vertices[i]
        y1, x1 = vertices[(i + 1) % k]
        # Half-plane test: cross product of edge and point offset.
        cross = (x1 - x0) * (yy - y0) - (y1 - y0) * (xx - x0)
        mask &= cross >= 0
    fill_region(canvas, mask, color, alpha)


def draw_hline_band(canvas: np.ndarray, y0: int, y1: int, color, alpha: float = 1.0) -> None:
    """Fill a horizontal band of rows ``[y0, y1)``."""
    y0 = max(0, int(y0))
    y1 = min(canvas.shape[0], int(y1))
    if y1 <= y0:
        return
    color = np.asarray(color, dtype=np.float32)
    canvas[y0:y1] = (1.0 - alpha) * canvas[y0:y1] + alpha * color


def vertical_gradient(canvas: np.ndarray, top_scale: float, bottom_scale: float) -> None:
    """Multiply rows by a linear brightness ramp (cheap shading)."""
    h = canvas.shape[0]
    ramp = np.linspace(top_scale, bottom_scale, h, dtype=np.float32)[:, None, None]
    canvas *= ramp
    np.clip(canvas, 0.0, 1.0, out=canvas)
