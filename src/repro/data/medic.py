"""Synthetic stand-in for the MEDIC disaster-image dataset (Alam et al., 2023).

MEDIC is 71,198 real social-media photographs labelled for humanitarian
response; it cannot be downloaded in this offline environment, so this
module generates *disaster scenes* with the same two tasks the paper
evaluates: **damage severity** (3 classes: none / mild / severe) and
**disaster type** (4 classes: fire / flood / earthquake / hurricane).

Design goals, matching the regime of the paper's Table 2 (accuracies in
the 52–63 % band, small MTL gains):

* The two tasks are *coupled* through shared scene structure — severity
  modulates how much of the type-specific motif covers the scene — which
  is the inductive-transfer channel MTL exploits.
* The mapping is deliberately ambiguous: motif intensity distributions
  overlap across severity classes, scenes carry heavy clutter, and a
  configurable fraction of labels is resampled (social-media label noise),
  which caps the achievable accuracy well below 100 %.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .base import MultiTaskDataset, TaskInfo
from .render import (
    blank_canvas,
    draw_hline_band,
    fill_circle,
    fill_ellipse,
    fill_rect,
    hsv_to_rgb,
)

__all__ = ["MedicSceneGenerator", "make_medic", "MEDIC_TASKS"]

MEDIC_TASKS: Tuple[TaskInfo, ...] = (
    TaskInfo("damage_severity", 3, "none-or-little / mild / severe (paper's T1)"),
    TaskInfo("disaster_type", 4, "fire / flood / earthquake / hurricane (paper's T2)"),
)

_TYPE_NAMES = ("fire", "flood", "earthquake", "hurricane")


class MedicSceneGenerator:
    """Procedural disaster scenes with coupled severity/type factors."""

    def __init__(
        self,
        image_size: int = 32,
        label_noise: float = 0.22,
        clutter: float = 0.5,
    ):
        if not 0.0 <= label_noise < 1.0:
            raise ValueError(f"label_noise must be in [0, 1), got {label_noise}")
        self.image_size = image_size
        self.label_noise = label_noise
        self.clutter = clutter

    # ------------------------------------------------------------------
    def render(self, disaster_type: int, severity: int, rng: np.random.Generator) -> np.ndarray:
        """Render one ``(C, H, W)`` scene."""
        size = self.image_size
        sky = hsv_to_rgb(0.55 + 0.1 * rng.random(), 0.25, 0.75 + 0.2 * rng.random())
        ground = hsv_to_rgb(0.08 + 0.08 * rng.random(), 0.4, 0.45 + 0.2 * rng.random())
        canvas = blank_canvas(size, size, sky)
        horizon = int(size * (0.5 + 0.15 * rng.random()))
        draw_hline_band(canvas, horizon, size, ground)

        # Buildings: simple grey blocks; severity will knock them about.
        n_buildings = int(rng.integers(2, 5))
        for _ in range(n_buildings):
            bw = size * (0.06 + 0.08 * rng.random())
            bh = size * (0.12 + 0.2 * rng.random())
            bx = size * rng.random()
            grey = 0.35 + 0.35 * rng.random()
            fill_rect(canvas, horizon - bh / 2, bx, bh / 2, bw, (grey, grey, grey))

        # Severity-controlled motif coverage with overlapping distributions.
        base_coverage = (0.08, 0.3, 0.55)[severity]
        coverage = float(np.clip(base_coverage + rng.normal(0, 0.13), 0.02, 0.85))
        self._draw_motif(canvas, _TYPE_NAMES[disaster_type], coverage, horizon, rng)

        # Clutter: random distractor blobs that mimic other motifs.
        if rng.random() < self.clutter:
            distractor = int(rng.integers(0, 4))
            self._draw_motif(
                canvas, _TYPE_NAMES[distractor], 0.1 * rng.random(), horizon, rng
            )
        return np.clip(canvas, 0.0, 1.0).transpose(2, 0, 1)

    def _draw_motif(
        self,
        canvas: np.ndarray,
        name: str,
        coverage: float,
        horizon: int,
        rng: np.random.Generator,
    ) -> None:
        size = self.image_size
        if coverage <= 0.0:
            return
        if name == "fire":
            # Orange/red blobs rising from the ground line.
            n_blobs = max(1, int(coverage * 14))
            for _ in range(n_blobs):
                r = size * (0.04 + 0.1 * coverage * rng.random())
                cy = horizon - size * 0.25 * rng.random()
                cx = size * rng.random()
                hue = 0.02 + 0.06 * rng.random()
                fill_circle(canvas, cy, cx, r, hsv_to_rgb(hue, 0.95, 0.95), alpha=0.85)
        elif name == "flood":
            # Blue water band swallowing the lower scene.
            depth = int(size * 0.45 * coverage) + 1
            blue = hsv_to_rgb(0.58 + 0.05 * rng.random(), 0.7, 0.55)
            draw_hline_band(canvas, size - depth, size, blue, alpha=0.9)
            for _ in range(int(coverage * 6)):
                wy = size - rng.random() * depth
                fill_ellipse(canvas, wy, size * rng.random(), 0.6, size * 0.08,
                             np.clip(blue * 1.3, 0, 1), alpha=0.6)
        elif name == "earthquake":
            # Grey rubble speckle and toppled blocks near the ground.
            n_debris = max(2, int(coverage * 22))
            for _ in range(n_debris):
                grey = 0.3 + 0.4 * rng.random()
                fill_rect(
                    canvas,
                    horizon + (size - horizon) * rng.random() * 0.9,
                    size * rng.random(),
                    size * 0.02 + size * 0.03 * rng.random(),
                    size * 0.02 + size * 0.05 * rng.random(),
                    (grey, grey * 0.95, grey * 0.9),
                    angle=rng.random() * 1.5,
                )
        elif name == "hurricane":
            # Dark swirling cloud bands in the sky.
            n_bands = max(1, int(coverage * 7))
            for i in range(n_bands):
                cy = horizon * rng.random() * 0.9
                grey = 0.25 + 0.25 * rng.random()
                fill_ellipse(
                    canvas, cy, size * rng.random(), size * 0.035,
                    size * (0.15 + 0.3 * coverage), (grey, grey, grey + 0.05),
                    alpha=0.8, angle=(rng.random() - 0.5) * 0.8,
                )
        else:  # pragma: no cover
            raise ValueError(f"unknown motif {name!r}")

    # ------------------------------------------------------------------
    def generate(self, n: int, rng: Optional[np.random.Generator] = None) -> MultiTaskDataset:
        """Generate ``n`` scenes with (noisy) severity and type labels."""
        rng = rng if rng is not None else np.random.default_rng(0)
        types = rng.integers(0, 4, size=n)
        severities = rng.integers(0, 3, size=n)
        images = (
            np.stack(
                [self.render(int(types[i]), int(severities[i]), rng) for i in range(n)]
            )
            if n
            else np.zeros((0, 3, self.image_size, self.image_size), dtype=np.float32)
        )
        # Social-media label noise: resample a fraction of labels uniformly.
        noisy_types = types.copy()
        noisy_sev = severities.copy()
        if n:
            flip_t = rng.random(n) < self.label_noise
            flip_s = rng.random(n) < self.label_noise
            noisy_types[flip_t] = rng.integers(0, 4, size=int(flip_t.sum()))
            noisy_sev[flip_s] = rng.integers(0, 3, size=int(flip_s.sum()))
        labels = {
            "damage_severity": noisy_sev.astype(np.int64),
            "disaster_type": noisy_types.astype(np.int64),
        }
        return MultiTaskDataset(images, labels, MEDIC_TASKS, name="medic")


def make_medic(
    n: int,
    image_size: int = 32,
    label_noise: float = 0.22,
    seed: int = 0,
) -> MultiTaskDataset:
    """Generate the paper's Table 2 workload (severity + type tasks)."""
    generator = MedicSceneGenerator(image_size=image_size, label_noise=label_noise)
    return generator.generate(n, rng=np.random.default_rng(seed))
