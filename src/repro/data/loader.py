"""Mini-batch iteration over :class:`~repro.data.base.MultiTaskDataset`."""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from .base import MultiTaskDataset

__all__ = ["DataLoader"]


class DataLoader:
    """Batched (optionally shuffled) iteration with a seeded generator.

    Yields ``(images, labels)`` where ``images`` is ``(B, C, H, W)`` float32
    and ``labels`` maps task name to a ``(B,)`` integer array — the shape
    the multi-task trainer consumes directly.
    """

    def __init__(
        self,
        dataset: MultiTaskDataset,
        batch_size: int = 32,
        shuffle: bool = False,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, Dict[str, np.ndarray]]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            batch = order[start : start + self.batch_size]
            if self.drop_last and batch.size < self.batch_size:
                break
            images = self.dataset.images[batch]
            labels = {k: v[batch] for k, v in self.dataset.labels.items()}
            yield images, labels
