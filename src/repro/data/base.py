"""Dataset containers for multi-task image classification.

The paper's data model (Eq. 1) is a labelled image dataset where every
image ``x_i`` carries a *set* of labels ``y_i`` — one per task.
:class:`MultiTaskDataset` is that object: an image tensor plus one integer
label array per named task, with task metadata describing class counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["TaskInfo", "MultiTaskDataset", "train_val_test_split"]


@dataclass(frozen=True)
class TaskInfo:
    """Metadata for one inference task ``T_j``.

    ``kind`` is ``"classification"`` (integer labels, cross-entropy,
    accuracy) or ``"regression"`` (float targets, MSE, R^2) — the paper's
    motivating automotive example pairs exactly these two: *"a
    classification task (identifying pedestrians, ...) and a regression
    task (determining bounding boxes)"*.  For regression,
    ``num_classes`` is the output dimension (e.g. 4 for a box).
    """

    name: str
    num_classes: int
    description: str = ""
    kind: str = "classification"

    def __post_init__(self):
        if self.kind not in ("classification", "regression"):
            raise ValueError(f"task {self.name!r}: unknown kind {self.kind!r}")
        if self.kind == "classification" and self.num_classes < 2:
            raise ValueError(f"task {self.name!r} needs >= 2 classes")
        if self.kind == "regression" and self.num_classes < 1:
            raise ValueError(f"task {self.name!r} needs >= 1 output dimension")

    @property
    def is_regression(self) -> bool:
        return self.kind == "regression"


class MultiTaskDataset:
    """Images with one integer label per task.

    Parameters
    ----------
    images:
        Float array of shape ``(N, C, H, W)`` with values in ``[0, 1]``.
    labels:
        Mapping from task name to an ``(N,)`` integer array.
    tasks:
        Metadata for each task present in ``labels``.
    name:
        Dataset name for reporting.
    """

    def __init__(
        self,
        images: np.ndarray,
        labels: Dict[str, np.ndarray],
        tasks: Sequence[TaskInfo],
        name: str = "dataset",
    ):
        images = np.asarray(images, dtype=np.float32)
        if images.ndim != 4:
            raise ValueError(f"images must be (N, C, H, W), got shape {images.shape}")
        n = images.shape[0]
        task_names = {t.name for t in tasks}
        if set(labels) != task_names:
            raise ValueError(f"labels keys {sorted(labels)} != tasks {sorted(task_names)}")
        normalized: Dict[str, np.ndarray] = {}
        for task in tasks:
            arr = np.asarray(labels[task.name])
            if task.is_regression:
                expected = (n,) if task.num_classes == 1 else (n, task.num_classes)
                if arr.shape not in ((n,), expected):
                    raise ValueError(
                        f"regression targets for {task.name!r} have shape "
                        f"{arr.shape}, expected {expected}"
                    )
                normalized[task.name] = arr.astype(np.float32).reshape(expected)
                continue
            if arr.shape != (n,):
                raise ValueError(
                    f"labels for {task.name!r} have shape {arr.shape}, expected ({n},)"
                )
            if arr.size and (arr.min() < 0 or arr.max() >= task.num_classes):
                raise ValueError(
                    f"labels for {task.name!r} outside [0, {task.num_classes})"
                )
            normalized[task.name] = arr.astype(np.int64)
        self.images = images
        self.labels = normalized
        self.tasks: Tuple[TaskInfo, ...] = tuple(tasks)
        self.name = name

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.images.shape[0]

    def __getitem__(self, index: int) -> Tuple[np.ndarray, Dict]:
        sample = {}
        for task in self.tasks:
            value = self.labels[task.name][index]
            sample[task.name] = value if task.is_regression else int(value)
        return self.images[index], sample

    @property
    def task_names(self) -> Tuple[str, ...]:
        return tuple(t.name for t in self.tasks)

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.images.shape[1:])  # type: ignore[return-value]

    def task_info(self, name: str) -> TaskInfo:
        """Return metadata for one task by name."""
        for task in self.tasks:
            if task.name == name:
                return task
        raise KeyError(f"unknown task {name!r}; have {self.task_names}")

    # ------------------------------------------------------------------
    def subset(self, indices: np.ndarray) -> "MultiTaskDataset":
        """Return a new dataset restricted to ``indices`` (copy-on-slice)."""
        indices = np.asarray(indices)
        return MultiTaskDataset(
            self.images[indices],
            {k: v[indices] for k, v in self.labels.items()},
            self.tasks,
            name=self.name,
        )

    def select_tasks(self, names: Iterable[str]) -> "MultiTaskDataset":
        """Return a view with only the requested tasks (paper's T1+T3 etc.)."""
        names = list(names)
        tasks = tuple(self.task_info(n) for n in names)
        return MultiTaskDataset(
            self.images,
            {n: self.labels[n] for n in names},
            tasks,
            name=self.name,
        )

    def split(
        self,
        fractions: Sequence[float] = (0.7, 0.15, 0.15),
        rng: Optional[np.random.Generator] = None,
    ) -> List["MultiTaskDataset"]:
        """Shuffle and split into parts proportional to ``fractions``."""
        if abs(sum(fractions) - 1.0) > 1e-6:
            raise ValueError(f"fractions must sum to 1, got {fractions}")
        rng = rng if rng is not None else np.random.default_rng(0)
        order = rng.permutation(len(self))
        parts: List[MultiTaskDataset] = []
        start = 0
        for i, frac in enumerate(fractions):
            stop = len(self) if i == len(fractions) - 1 else start + int(round(frac * len(self)))
            parts.append(self.subset(order[start:stop]))
            start = stop
        return parts

    def __repr__(self) -> str:
        tasks = ", ".join(f"{t.name}({t.num_classes})" for t in self.tasks)
        return (
            f"MultiTaskDataset(name={self.name!r}, n={len(self)}, "
            f"image={self.image_shape}, tasks=[{tasks}])"
        )


def train_val_test_split(
    dataset: MultiTaskDataset,
    val_fraction: float = 0.15,
    test_fraction: float = 0.15,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[MultiTaskDataset, MultiTaskDataset, MultiTaskDataset]:
    """Convenience three-way split returning ``(train, val, test)``."""
    train_fraction = 1.0 - val_fraction - test_fraction
    if train_fraction <= 0:
        raise ValueError("val + test fractions must leave room for train")
    train, val, test = dataset.split((train_fraction, val_fraction, test_fraction), rng=rng)
    return train, val, test
