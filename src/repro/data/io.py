"""Dataset inspection utilities: image export and label statistics.

The generators in this package are procedural; being able to look at
what they produce (without matplotlib, which is not installed offline)
and to sanity-check label balance is part of making the stand-in
datasets auditable.  Images are exported as binary PPM (P6), which every
image viewer opens.
"""

from __future__ import annotations

import os
from typing import Dict, Union

import numpy as np

from .base import MultiTaskDataset

__all__ = ["save_ppm", "save_image_grid", "label_distribution", "dataset_summary"]

PathLike = Union[str, os.PathLike]


def save_ppm(image: np.ndarray, path: PathLike) -> None:
    """Write one ``(C, H, W)`` float image in [0, 1] as a binary PPM."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[0] != 3:
        raise ValueError(f"expected (3, H, W) image, got shape {image.shape}")
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    pixels = (np.clip(image, 0.0, 1.0) * 255.0).astype(np.uint8)
    pixels = pixels.transpose(1, 2, 0)  # HWC for PPM raster order
    header = f"P6\n{pixels.shape[1]} {pixels.shape[0]}\n255\n".encode("ascii")
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(pixels.tobytes())


def save_image_grid(
    images: np.ndarray,
    path: PathLike,
    columns: int = 8,
    padding: int = 2,
) -> None:
    """Tile ``(N, 3, H, W)`` images into one PPM grid (white gutter)."""
    images = np.asarray(images)
    if images.ndim != 4 or images.shape[1] != 3:
        raise ValueError(f"expected (N, 3, H, W) images, got shape {images.shape}")
    n, _, h, w = images.shape
    columns = max(1, min(columns, n))
    rows = (n + columns - 1) // columns
    grid = np.ones(
        (3, rows * (h + padding) - padding, columns * (w + padding) - padding),
        dtype=np.float32,
    )
    for index in range(n):
        r, c = divmod(index, columns)
        y, x = r * (h + padding), c * (w + padding)
        grid[:, y : y + h, x : x + w] = images[index]
    save_ppm(grid, path)


def label_distribution(dataset: MultiTaskDataset) -> Dict[str, np.ndarray]:
    """Per-classification-task class-frequency vectors (summing to 1).

    Regression tasks carry no class structure and are omitted; use
    :func:`dataset_summary` for their moment statistics.
    """
    out: Dict[str, np.ndarray] = {}
    for task in dataset.tasks:
        if task.is_regression:
            continue
        counts = np.bincount(dataset.labels[task.name], minlength=task.num_classes)
        total = counts.sum()
        out[task.name] = counts / total if total else counts.astype(float)
    return out


def dataset_summary(dataset: MultiTaskDataset) -> str:
    """Readable multi-line summary: size, image stats, label balance."""
    lines = [
        f"dataset {dataset.name!r}: {len(dataset)} samples, "
        f"images {dataset.image_shape}, "
        f"pixel range [{dataset.images.min():.3f}, {dataset.images.max():.3f}], "
        f"mean {dataset.images.mean():.3f}",
    ]
    distributions = label_distribution(dataset)
    for task in dataset.tasks:
        if task.is_regression:
            targets = dataset.labels[task.name].reshape(len(dataset), -1)
            mean = ", ".join(f"{m:.3f}" for m in targets.mean(axis=0))
            std = ", ".join(f"{s:.3f}" for s in targets.std(axis=0))
            lines.append(
                f"  task {task.name!r}: regression ({targets.shape[1]} dims), "
                f"mean [{mean}], std [{std}]"
            )
            continue
        freqs = distributions[task.name]
        balance = ", ".join(f"{f:.2f}" for f in freqs)
        entropy = float(-(freqs[freqs > 0] * np.log(freqs[freqs > 0])).sum())
        uniform = np.log(len(freqs))
        lines.append(
            f"  task {task.name!r}: {len(freqs)} classes, freqs [{balance}] "
            f"(entropy {entropy:.2f}/{uniform:.2f})"
        )
    return "\n".join(lines)
