"""Synthetic stand-in for the FACES dataset (Ebner et al., 2010).

FACES is 2,052 studio photographs of faces labelled for perceived age
(3 classes: young / middle-aged / old), gender (2) and facial expression
(the paper uses 3 classes).  The photographs cannot be downloaded offline,
so this module draws parametric face sketches in which each task label
controls distinct, learnable geometry:

* **age** — forehead wrinkles, face elongation and hair greying;
* **gender** — hair volume/length region (a deliberately easy cue, the
  paper reports ~99 % gender accuracy);
* **expression** — mouth curvature and eyebrow slant
  (happy / neutral / sad).

The paper's Table 3 regime is "small dataset, pre-trained backbone,
near-ceiling accuracy"; these sketches are easy enough for a fine-tuned
tiny backbone to reach that band while still producing interesting
STL-vs-MTL deltas when trained from scratch.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .base import MultiTaskDataset, TaskInfo
from .render import (
    blank_canvas,
    fill_circle,
    fill_ellipse,
    fill_rect,
    hsv_to_rgb,
)

__all__ = ["FaceSketchGenerator", "make_faces", "FACES_TASKS"]

FACES_TASKS: Tuple[TaskInfo, ...] = (
    TaskInfo("age", 3, "young / middle-aged / old (paper's T1)"),
    TaskInfo("gender", 2, "perceived gender (paper's T2)"),
    TaskInfo("expression", 3, "happy / neutral / sad (paper's T3)"),
)


class FaceSketchGenerator:
    """Parametric face sketches with age/gender/expression factors."""

    def __init__(self, image_size: int = 32, jitter: float = 1.0):
        self.image_size = image_size
        self.jitter = jitter

    # ------------------------------------------------------------------
    def render(self, age: int, gender: int, expression: int, rng: np.random.Generator) -> np.ndarray:
        """Render one ``(C, H, W)`` face sketch."""
        size = self.image_size
        j = self.jitter
        background = hsv_to_rgb(0.6 * rng.random(), 0.12, 0.85 + 0.1 * rng.random())
        canvas = blank_canvas(size, size, background)

        cy = size * 0.52 + j * rng.normal(0, size * 0.01)
        cx = size * 0.5 + j * rng.normal(0, size * 0.01)
        # Age elongates the face slightly.
        ry = size * (0.30 + 0.02 * age) + j * rng.normal(0, size * 0.005)
        rx = size * 0.24 + j * rng.normal(0, size * 0.005)
        skin = hsv_to_rgb(0.07 + 0.03 * rng.random(), 0.3 + 0.15 * rng.random(), 0.85)

        # Hair first (behind the face): gender controls volume/length.
        grey_level = (0.0, 0.45, 0.85)[age]
        hair_base = hsv_to_rgb(0.08 + 0.04 * rng.random(), 0.6, 0.25 + 0.15 * rng.random())
        hair = np.clip(hair_base * (1 - grey_level) + grey_level * 0.75, 0, 1)
        if gender == 0:
            # Long hair: big ellipse behind the whole head and shoulders.
            fill_ellipse(canvas, cy + size * 0.05, cx, ry * 1.35, rx * 1.5, hair)
        else:
            # Short hair: cap on top of the head.
            fill_ellipse(canvas, cy - ry * 0.75, cx, ry * 0.45, rx * 1.1, hair)

        fill_ellipse(canvas, cy, cx, ry, rx, skin)

        # Eyes.
        eye_y = cy - ry * 0.2
        eye_dx = rx * 0.45
        for side in (-1, 1):
            fill_ellipse(canvas, eye_y, cx + side * eye_dx, size * 0.035, size * 0.05,
                         (1.0, 1.0, 1.0))
            fill_circle(canvas, eye_y, cx + side * eye_dx, size * 0.022, (0.12, 0.1, 0.1))

        # Eyebrows: expression tilts them (sad = inner-up, happy = relaxed).
        brow_tilt = (-0.25, 0.0, 0.3)[expression]
        for side in (-1, 1):
            fill_rect(
                canvas, eye_y - size * 0.07, cx + side * eye_dx,
                size * 0.012, size * 0.055, (0.15, 0.12, 0.1),
                angle=side * brow_tilt,
            )

        # Age wrinkles: horizontal forehead lines.
        for line in range(age):
            wy = cy - ry * (0.55 + 0.12 * line)
            fill_rect(canvas, wy, cx, size * 0.008, rx * 0.55, (0.45, 0.35, 0.3), alpha=0.8)

        # Mouth: expression bends it (happy up, neutral flat, sad down).
        curvature = (0.12, 0.0, -0.12)[expression]
        mouth_y = cy + ry * 0.45
        mouth_w = rx * 0.6
        n_seg = 9
        for k in range(n_seg):
            t = (k / (n_seg - 1)) * 2.0 - 1.0
            px = cx + t * mouth_w
            py = mouth_y - curvature * size * (1.0 - t * t) * 2.0
            fill_circle(canvas, py, px, size * 0.018, (0.55, 0.15, 0.15))

        return np.clip(canvas, 0.0, 1.0).transpose(2, 0, 1)

    # ------------------------------------------------------------------
    def generate(self, n: int, rng: Optional[np.random.Generator] = None) -> MultiTaskDataset:
        """Generate ``n`` sketches with age/gender/expression labels."""
        rng = rng if rng is not None else np.random.default_rng(0)
        ages = rng.integers(0, 3, size=n)
        genders = rng.integers(0, 2, size=n)
        expressions = rng.integers(0, 3, size=n)
        images = (
            np.stack(
                [
                    self.render(int(ages[i]), int(genders[i]), int(expressions[i]), rng)
                    for i in range(n)
                ]
            )
            if n
            else np.zeros((0, 3, self.image_size, self.image_size), dtype=np.float32)
        )
        labels = {
            "age": ages.astype(np.int64),
            "gender": genders.astype(np.int64),
            "expression": expressions.astype(np.int64),
        }
        return MultiTaskDataset(images, labels, FACES_TASKS, name="faces")


def make_faces(n: int, image_size: int = 32, seed: int = 0) -> MultiTaskDataset:
    """Generate the paper's Table 3 workload (age, gender, expression)."""
    generator = FaceSketchGenerator(image_size=image_size)
    return generator.generate(n, rng=np.random.default_rng(seed))
