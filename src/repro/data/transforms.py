"""Image transforms applied at dataset-construction or batch time."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["normalize", "denormalize", "random_horizontal_flip", "compute_mean_std"]


def compute_mean_std(images: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-channel mean/std over an ``(N, C, H, W)`` array."""
    mean = images.mean(axis=(0, 2, 3))
    std = images.std(axis=(0, 2, 3))
    return mean.astype(np.float32), np.maximum(std, 1e-6).astype(np.float32)


def normalize(images: np.ndarray, mean: Sequence[float], std: Sequence[float]) -> np.ndarray:
    """Channel-wise ``(x - mean) / std`` on ``(N, C, H, W)`` or ``(C, H, W)``."""
    mean = np.asarray(mean, dtype=np.float32).reshape(-1, 1, 1)
    std = np.asarray(std, dtype=np.float32).reshape(-1, 1, 1)
    return (images - mean) / std


def denormalize(images: np.ndarray, mean: Sequence[float], std: Sequence[float]) -> np.ndarray:
    """Inverse of :func:`normalize`."""
    mean = np.asarray(mean, dtype=np.float32).reshape(-1, 1, 1)
    std = np.asarray(std, dtype=np.float32).reshape(-1, 1, 1)
    return images * std + mean


def random_horizontal_flip(
    images: np.ndarray, p: float = 0.5, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Flip each image left-right with probability ``p`` (augmentation)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    out = np.array(images, copy=True)
    flips = rng.random(out.shape[0]) < p
    out[flips] = out[flips, :, :, ::-1]
    return out
