"""``repro.attest`` — golden-digest attestation for the scenario matrix.

Every quick-tier scenario has a committed **golden attestation**: the
SHA-256 digests of its deployment spec, its timing-free optimized
plan-IR text (both halves), and every task output of its deterministic
synthetic traffic.  ``repro attest verify`` recomputes all of it on a
clean checkout and must match bit-for-bit — any optimizer pass, kernel,
weight-init or wire change that moves a single bit fails CI **naming
the first divergent plan step**, instead of drifting quietly under a
1e-6 tolerance.

The three layers (see ``docs/benchmarking.md`` for the full policy):

* :mod:`repro.attest.canonical` — the canonical tensor/JSON forms and
  the informational (never digested) host stamp;
* :mod:`repro.attest.attestation` — :func:`attest_scenario` and the
  digest-by-digest :func:`first_divergence` diff;
* :mod:`repro.attest.golden` — the checked-in registry at
  ``src/repro/scenarios/golden/`` plus :func:`record_goldens` /
  :func:`verify_goldens`, surfaced as ``repro attest record|verify``.
"""

from .attestation import (
    Attestation,
    AttestationError,
    AttestationPolicyError,
    attest_scenario,
    check_attestable,
    first_divergence,
)
from .canonical import (
    canonical_bytes,
    canonical_json,
    env_stamp,
    provenance_digest,
    sha256_hex,
    tensor_digest,
)
from .golden import (
    GOLDEN_DIR,
    VerifyResult,
    golden_path,
    list_goldens,
    load_golden,
    record_goldens,
    save_golden,
    verify_goldens,
)

__all__ = [
    "GOLDEN_DIR",
    "Attestation",
    "AttestationError",
    "AttestationPolicyError",
    "VerifyResult",
    "attest_scenario",
    "canonical_bytes",
    "canonical_json",
    "check_attestable",
    "env_stamp",
    "first_divergence",
    "golden_path",
    "list_goldens",
    "load_golden",
    "provenance_digest",
    "record_goldens",
    "save_golden",
    "sha256_hex",
    "tensor_digest",
    "verify_goldens",
]
