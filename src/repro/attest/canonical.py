"""Canonical serialization + digest primitives for attestation.

One rule governs everything in :mod:`repro.attest`: **a digest is a pure
function of numerics and structure, never of timing or environment**.
This module collects the canonical forms that rule allows:

* :func:`canonical_bytes` / :func:`tensor_digest` — the cache-key tensor
  canonicalizer (dtype + shape header, C-contiguous payload), re-exported
  from :mod:`repro.serve.cache.keys` so the serve cache and the golden
  registry can never drift apart on what "the same tensor" means;
* :func:`canonical_json` — sorted-key, minimal-separator JSON, the form
  spec digests hash;
* :func:`sha256_hex` — the one hash everything uses;
* :func:`env_stamp` — the *informational* host record attached to every
  attestation.  It is deliberately **excluded from all digests**: it
  exists so a digest mismatch on another machine can be triaged (BLAS
  kernel dispatch differs across microarchitectures), not so the goldens
  encode the machine they were recorded on.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
from typing import Any, Dict

import numpy as np

from ..serve.cache.keys import canonical_bytes, provenance_digest, tensor_digest

__all__ = [
    "canonical_bytes",
    "canonical_json",
    "env_stamp",
    "provenance_digest",
    "sha256_hex",
    "tensor_digest",
]


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN laundering.

    The canonical text form for anything dict-shaped that gets digested
    (deployment specs already serialise this way; the attestation files
    themselves use it for their digestable sections).
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def sha256_hex(data: bytes) -> str:
    """The registry's one hash function (hex-encoded SHA-256)."""
    return hashlib.sha256(data).hexdigest()


def env_stamp() -> Dict[str, Any]:
    """Informational host/toolchain record — **never digested**.

    Records exactly the facts that can legitimately move a bit-exact
    digest between machines: the Python/numpy/scipy versions, whether
    the BLAS and sparse kernels are available (they change which plan
    steps exist), the CPU architecture (BLAS kernel dispatch), and the
    byte order (the canonical tensor header pins little-endian dtypes).
    """
    from ..nn.engine import kernels

    try:
        import scipy

        scipy_version = scipy.__version__
    except ImportError:  # pragma: no cover - image bakes scipy in
        scipy_version = None
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy_version,
        "have_blas": bool(kernels.HAVE_BLAS),
        "have_sparse": bool(kernels.HAVE_SPARSE),
        "machine": platform.machine(),
        "byteorder": sys.byteorder,
    }
