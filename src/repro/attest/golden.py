"""The checked-in golden registry: record and verify attestations.

Goldens live at ``src/repro/scenarios/golden/<scenario>.json``, one
canonical-JSON attestation per scenario, committed to the repository.
``repro attest record`` writes them; ``repro attest verify`` recomputes
every attestation and diffs digest-by-digest, naming the first divergent
step (see :func:`~repro.attest.attestation.first_divergence`).

Recording policy mirrors the scenario tiers:

* **quick** tier — recorded and CI-gated on every PR (small inputs, no
  depthwise probe eligibility, seconds to verify);
* **hires** tier (float32 rows) — recorded but ``host_gated``: large
  GEMMs may dispatch different BLAS kernels across CPU
  microarchitectures, so these verify on demand (``--host-gated``), not
  in CI;
* quant8 *compute* rows — excluded by policy (calibration-dependent, see
  :class:`~repro.attest.attestation.AttestationPolicyError`) and skipped
  with a named reason rather than silently.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ..scenarios import available_scenarios, get_scenario
from .attestation import (
    Attestation,
    AttestationError,
    AttestationPolicyError,
    attest_scenario,
    check_attestable,
    first_divergence,
)

__all__ = [
    "GOLDEN_DIR",
    "VerifyResult",
    "golden_path",
    "list_goldens",
    "load_golden",
    "record_goldens",
    "save_golden",
    "verify_goldens",
]

#: Where the committed goldens live (inside the package so installed
#: checkouts and editable ones agree).
GOLDEN_DIR = Path(__file__).resolve().parent.parent / "scenarios" / "golden"

#: The tiers ``record``/``verify`` cover by default.  ``mid`` is left
#: out of the defaults (its ``"auto"`` split resolves through the
#: latency optimizer's device model — deterministic, but a device-table
#: retune would churn every mid golden); it can still be attested
#: explicitly via ``--scenario``.
RECORD_TIERS = ("quick", "hires")


def golden_path(name: str, golden_dir: Optional[Path] = None) -> Path:
    return (golden_dir or GOLDEN_DIR) / f"{name}.json"


def list_goldens(golden_dir: Optional[Path] = None) -> List[str]:
    """Scenario names with a committed golden, sorted."""
    directory = golden_dir or GOLDEN_DIR
    if not directory.is_dir():
        return []
    return sorted(path.stem for path in directory.glob("*.json"))


def load_golden(name: str, golden_dir: Optional[Path] = None) -> Attestation:
    path = golden_path(name, golden_dir)
    if not path.is_file():
        raise AttestationError(
            f"no golden recorded for scenario {name!r} "
            f"(looked at {path}); run `repro attest record`"
        )
    return Attestation.from_dict(json.loads(path.read_text()))


def save_golden(
    attestation: Attestation, golden_dir: Optional[Path] = None
) -> Path:
    """Write one attestation as pretty, sorted, newline-terminated JSON."""
    directory = golden_dir or GOLDEN_DIR
    directory.mkdir(parents=True, exist_ok=True)
    path = golden_path(attestation.scenario, directory)
    text = json.dumps(attestation.to_dict(), sort_keys=True, indent=2)
    path.write_text(text + "\n")
    return path


def _default_names(tiers: Sequence[str]) -> List[str]:
    names: List[str] = []
    for tier in tiers:
        names.extend(available_scenarios(tier))
    return names


@dataclass
class VerifyResult:
    """The outcome of one record/verify sweep."""

    checked: List[str] = field(default_factory=list)
    recorded: List[str] = field(default_factory=list)
    skipped: List[Tuple[str, str]] = field(default_factory=list)  # (name, why)
    divergences: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def describe(self) -> str:
        lines: List[str] = []
        for name in self.recorded:
            lines.append(f"recorded {name}")
        for name in self.checked:
            lines.append(f"ok       {name}")
        for name, why in self.skipped:
            lines.append(f"skipped  {name}: {why}")
        for name, why in self.divergences:
            lines.append(f"DIVERGED {name}: {why}")
        tail = "all attestations match" if self.ok else (
            f"{len(self.divergences)} attestation(s) diverged"
        )
        lines.append(tail)
        return "\n".join(lines)


def record_goldens(
    names: Optional[Sequence[str]] = None,
    update: bool = False,
    golden_dir: Optional[Path] = None,
) -> VerifyResult:
    """Record goldens for ``names`` (default: quick + hires tiers).

    Existing goldens are left untouched unless ``update`` is set —
    regenerating a golden is a reviewed, deliberate act (see
    ``docs/benchmarking.md``), not a side effect.  Policy-excluded
    scenarios are skipped with the policy text.
    """
    result = VerifyResult()
    for name in names or _default_names(RECORD_TIERS):
        scenario = get_scenario(name)
        path = golden_path(name, golden_dir)
        if path.is_file() and not update:
            result.skipped.append((name, "golden exists (use --update)"))
            continue
        try:
            attestation = attest_scenario(scenario)
        except AttestationPolicyError as error:
            result.skipped.append((name, str(error).split(".")[0]))
            continue
        save_golden(attestation, golden_dir)
        result.recorded.append(name)
    return result


def verify_goldens(
    names: Optional[Sequence[str]] = None,
    host_gated: bool = False,
    golden_dir: Optional[Path] = None,
) -> VerifyResult:
    """Recompute and diff attestations against the committed goldens.

    Default scope is every committed golden that is *not* host-gated
    (the CI contract); ``host_gated=True`` widens to all of them.  A
    scenario without a golden is a divergence, not a skip — CI must fail
    when a new quick-tier scenario lands unrecorded.
    """
    result = VerifyResult()
    if names is None:
        names = list(
            dict.fromkeys(available_scenarios("quick") + list_goldens(golden_dir))
        )
    for name in names:
        scenario = get_scenario(name)
        try:
            golden = load_golden(name, golden_dir)
        except AttestationError as error:
            # A missing golden is a divergence (CI must fail when a new
            # quick scenario lands unrecorded) — unless the scenario is
            # policy-excluded, which is a named skip.
            try:
                check_attestable(scenario.deployment_spec())
            except AttestationPolicyError as policy:
                result.skipped.append((name, str(policy).split(".")[0]))
            else:
                result.divergences.append((name, str(error)))
            continue
        if golden.host_gated and not host_gated:
            result.skipped.append(
                (name, "host-gated tier (verify with --host-gated)")
            )
            continue
        try:
            attestation = attest_scenario(scenario)
        except AttestationPolicyError as error:
            result.skipped.append((name, str(error).split(".")[0]))
            continue
        divergence = first_divergence(golden, attestation)
        if divergence is None:
            result.checked.append(name)
        else:
            result.divergences.append((name, divergence))
    return result
