"""Attesting one scenario: deterministic digests over its whole run.

:func:`attest_scenario` deploys a scenario exactly as the runner does,
then reduces the run to SHA-256 digests at three levels:

* ``spec_digest`` — the serialised :class:`~repro.serve.spec.DeploymentSpec`;
* ``plan_digest`` — the timing-free optimized plan-IR text of *both*
  halves plus the resolved split index (see
  :meth:`~repro.serve.deployment.Deployment.provenance`); the full text
  is kept alongside so a mismatch names the first divergent step;
* ``output_digests`` — one canonical tensor digest per (task, batch) of
  the scenario's deterministic synthetic traffic.

Policy — what is *not* attestable
---------------------------------
Attestation is an **exact** gate, so it only covers configurations whose
numerics are a pure function of the spec:

* ``compute="quant8"`` is excluded: the int8 tier's requantisation
  scales are calibrated from observed activations, which makes its
  outputs a property of the calibration protocol, not of the spec alone.
  The float32 reference rows of the same scenarios are the attested
  ground truth the quant tier's accuracy gates compare against.
* cache-enabled specs are excluded: attestation must digest the compute
  path itself; a response-cache hit would attest the cache, not the
  pipeline (and the serve cache already carries its own provenance
  keys, see :mod:`repro.serve.cache`).

Both raise :class:`AttestationPolicyError` naming the rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import zip_longest
from typing import Any, Dict, List, Optional

from ..scenarios.spec import Scenario
from .canonical import env_stamp, tensor_digest

__all__ = [
    "Attestation",
    "AttestationError",
    "AttestationPolicyError",
    "attest_scenario",
    "first_divergence",
]

FORMAT = "repro-attest-v1"


class AttestationError(Exception):
    """Malformed attestation data or an unknown golden."""


class AttestationPolicyError(AttestationError):
    """The configuration is excluded from exact attestation by policy."""


@dataclass(frozen=True)
class Attestation:
    """The digest record of one scenario run.

    ``plan_ir`` holds the full timing-free plan text (stored as lines in
    the JSON form so golden diffs stay readable); ``env`` is the
    informational host stamp — compared never, recorded always.
    ``host_gated`` marks tiers whose output digests may legitimately
    move across CPU microarchitectures (BLAS kernel dispatch): CI only
    gates non-host-gated attestations.
    """

    scenario: str
    tier: str
    host_gated: bool
    spec_digest: str
    plan_digest: str
    plan_ir: str
    output_digests: Dict[str, List[str]]
    env: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": FORMAT,
            "scenario": self.scenario,
            "tier": self.tier,
            "host_gated": self.host_gated,
            "spec_digest": self.spec_digest,
            "plan_digest": self.plan_digest,
            "plan_ir": self.plan_ir.splitlines(),
            "output_digests": {
                task: list(digests)
                for task, digests in sorted(self.output_digests.items())
            },
            "env": dict(self.env),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Attestation":
        if data.get("format") != FORMAT:
            raise AttestationError(
                f"unknown attestation format {data.get('format')!r} "
                f"(expected {FORMAT!r})"
            )
        return cls(
            scenario=data["scenario"],
            tier=data["tier"],
            host_gated=bool(data["host_gated"]),
            spec_digest=data["spec_digest"],
            plan_digest=data["plan_digest"],
            plan_ir="\n".join(data["plan_ir"]),
            output_digests={
                task: list(digests)
                for task, digests in data["output_digests"].items()
            },
            env=dict(data.get("env", {})),
        )


def check_attestable(spec) -> None:
    """Raise :class:`AttestationPolicyError` for non-attestable specs."""
    if spec.compute != "float32":
        raise AttestationPolicyError(
            f"compute={spec.compute!r} is excluded from exact attestation: "
            "the int8 tier's requant scales are calibration-dependent, so "
            "its outputs are not a pure function of the spec.  Attest the "
            "float32 reference scenario instead."
        )
    if spec.cache is not None and spec.cache.enabled:
        raise AttestationPolicyError(
            "cache-enabled specs are excluded from exact attestation: a "
            "response-cache hit would attest the cache, not the compute "
            "path.  Attest with cache=None (the serve cache carries its "
            "own provenance keys)."
        )


def attest_scenario(scenario: Scenario, **spec_overrides) -> Attestation:
    """Run ``scenario``'s deterministic traffic and digest everything.

    ``spec_overrides`` are forwarded to
    :meth:`~repro.scenarios.spec.Scenario.deployment_spec` (the same
    hook the scenario runner exposes); the resulting spec must pass
    :func:`check_attestable`.
    """
    from ..serve.deployment import deploy

    spec = scenario.deployment_spec(**spec_overrides)
    check_attestable(spec)
    with deploy(spec) as deployment:
        spec_digest, plan_digest = deployment.provenance()
        plan_ir = deployment.plan_text()
        outputs = [deployment.infer(batch) for batch in scenario.iter_batches()]
    tasks = sorted(outputs[0]) if outputs else []
    output_digests = {
        task: [tensor_digest(batch[task]) for batch in outputs] for task in tasks
    }
    return Attestation(
        scenario=scenario.name,
        tier=scenario.tier,
        host_gated=scenario.tier != "quick",
        spec_digest=spec_digest,
        plan_digest=plan_digest,
        plan_ir=plan_ir,
        output_digests=output_digests,
        env=env_stamp(),
    )


def first_divergence(golden: Attestation, fresh: Attestation) -> Optional[str]:
    """Name the first place two attestations disagree (``None`` if none).

    Ordered by causality: a spec change explains everything downstream,
    a plan change explains output changes, so the earliest layer that
    moved is the one named.  Plan divergence is narrowed to the first
    differing line of the stored plan-IR text — the step line carries
    the kind, label, shapes and content digests, which is normally
    enough to see *which weight or pass* moved.
    """
    if golden.spec_digest != fresh.spec_digest:
        return (
            f"spec digest changed: {golden.spec_digest[:16]} -> "
            f"{fresh.spec_digest[:16]} (the deployment spec itself differs)"
        )
    if golden.plan_digest != fresh.plan_digest:
        golden_lines = golden.plan_ir.splitlines()
        fresh_lines = fresh.plan_ir.splitlines()
        for index, (a, b) in enumerate(zip_longest(golden_lines, fresh_lines)):
            if a != b:
                return (
                    f"plan digest changed; first divergent step "
                    f"(plan line {index}):\n  golden:  {a!r}\n  current: {b!r}"
                )
        return (
            "plan digest changed but the stored plan text matches — the "
            "split index or a non-step provenance part moved"
        )
    for task in sorted(set(golden.output_digests) | set(fresh.output_digests)):
        golden_digests = golden.output_digests.get(task)
        fresh_digests = fresh.output_digests.get(task)
        if golden_digests is None or fresh_digests is None:
            missing = "golden" if golden_digests is None else "current"
            return f"task {task!r} is absent from the {missing} attestation"
        for batch, (a, b) in enumerate(zip_longest(golden_digests, fresh_digests)):
            if a != b:
                return (
                    f"output digest changed at task {task!r}, batch {batch}: "
                    f"{(a or '<missing>')[:16]} -> {(b or '<missing>')[:16]} "
                    "(plan and spec digests match: same program, different "
                    "bits — suspect kernel dispatch or an unattested input)"
                )
    return None
