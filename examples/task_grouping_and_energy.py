"""Decide which tasks to co-train and where to split — data-driven.

Two questions every MTL-Split deployment must answer, tackled with the
library's analysis tooling:

1. **Which tasks should share the backbone?**  Gradient-cosine task
   affinity (Sec. 2.2's task-relationship question, Taskonomy-style):
   tasks whose loss gradients on the shared parameters point the same
   way transfer to each other; conflicting tasks deserve their own
   backbone.
2. **Where should the network be cut?**  The Neurosurgeon-style sweep
   (Kang et al. [15]) over latency *and* edge energy, across channel
   conditions — showing when MTL-Split's backbone-boundary cut is
   optimal and when a different cut would pay.

Run:  python examples/task_grouping_and_energy.py
"""

import numpy as np

from repro import data
from repro.core import (
    MTLSplitNet,
    MultiTaskTrainer,
    TrainConfig,
    affinity_matrix,
    suggest_task_groups,
)
from repro.deployment import (
    GIGABIT_ETHERNET,
    JETSON_NANO,
    JETSON_NANO_ENERGY,
    RTX3090_SERVER,
    energy_profile,
    latency_profile,
    optimal_split_index,
)
from repro.models import get_spec

TASKS = ("scale", "shape", "wall_hue", "object_hue")


def main() -> None:
    print("== 1. task affinity: which tasks should share the backbone? ==")
    dataset = data.make_shapes3d(700, tasks=TASKS, noise_amount=0.1, seed=13)
    train, _val, _test = data.train_val_test_split(
        dataset, val_fraction=0.0, test_fraction=0.2, rng=np.random.default_rng(13)
    )
    net = MTLSplitNet.from_tasks("mobilenet_v3_tiny", list(train.tasks), 32, seed=13)
    MultiTaskTrainer(TrainConfig(epochs=2, lr=1e-2, batch_size=64, seed=13)).fit(net, train)

    matrix, names = affinity_matrix(net, train, batch_size=64)
    print("   gradient-cosine affinity on shared parameters psi:")
    header = "            " + "".join(f"{n[:10]:>12}" for n in names)
    print(header)
    for i, name in enumerate(names):
        row = "".join(f"{matrix[i, j]:>12.2f}" for j in range(len(names)))
        print(f"   {name[:10]:>9}{row}")
    groups = suggest_task_groups(matrix, names, threshold=0.0)
    print(f"   suggested backbone groups: {groups}")

    print("\n== 2. latency- and energy-optimal split (MobileNetV3-Small @224) ==")
    spec = get_spec("mobilenet_v3_small")
    for factor, label in ((1, "gigabit"), (1000, "1 Mbps degraded")):
        channel = GIGABIT_ETHERNET.degraded(factor) if factor > 1 else GIGABIT_ETHERNET
        best_latency = optimal_split_index(
            spec, JETSON_NANO, RTX3090_SERVER, channel, input_size=224
        )
        energies = energy_profile(
            spec, JETSON_NANO, RTX3090_SERVER, channel, JETSON_NANO_ENERGY,
            input_size=224,
        )
        best_energy = min(energies, key=lambda e: e.total_joules)
        default = latency_profile(
            spec, JETSON_NANO, RTX3090_SERVER, channel, input_size=224
        )[-1]
        print(f"   {label}:")
        print(
            f"     latency-optimal cut: {best_latency.stage_name:>12} "
            f"({best_latency.total_seconds * 1e3:7.2f} ms vs default "
            f"{default.total_seconds * 1e3:7.2f} ms)"
        )
        print(
            f"     energy-optimal cut:  {best_energy.latency.stage_name:>12} "
            f"({best_energy.total_joules * 1e3:7.2f} mJ/inference on the edge)"
        )
    print(
        "\n   reading: on a fast LAN an earlier cut (or full offload) wins; as\n"
        "   the channel degrades both optima migrate to MTL-Split's late cut,\n"
        "   where the transmitted Z_b is smallest."
    )


if __name__ == "__main__":
    main()
