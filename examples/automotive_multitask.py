"""Automotive-style multi-task perception on a memory-constrained edge box.

The paper's introduction motivates MTL-Split with the automotive domain:
one camera stream, several concurrent inference tasks, not enough memory
for one network per task.  This example plays that scenario end to end:

* a three-task perception workload (object type, object size, scene
  region hue — stand-ins for "what is it / how far is it / context");
* an STL baseline (three dedicated networks) vs MTL-Split (one backbone);
* the deployment decision on a Jetson-Nano-class device: the LoC memory
  check, the RoC transfer cost on an LTE uplink, and the SC compromise.

Run:  python examples/automotive_multitask.py
"""

import numpy as np

from repro import data
from repro.core import MTLSplitNet, MultiTaskTrainer, TrainConfig, evaluate
from repro.deployment import (
    JETSON_NANO,
    LTE_UPLINK,
    RTX3090_SERVER,
    compare_paradigms,
    render_paradigm_comparison,
)
from repro.models import get_spec

TASKS = ("shape", "scale", "floor_hue")  # what / how big / where-context
EPOCHS = 3


def main() -> None:
    print("camera workload: three concurrent perception tasks ...")
    dataset = data.make_shapes3d(900, tasks=TASKS, noise_amount=0.1, seed=5)
    train, _val, test = data.train_val_test_split(
        dataset, val_fraction=0.0, test_fraction=0.25, rng=np.random.default_rng(5)
    )
    config = TrainConfig(epochs=EPOCHS, lr=1e-2, batch_size=64, seed=5)

    print("\nSTL baseline: one dedicated network per task")
    stl_accuracy = {}
    total_stl_params = 0
    for task in TASKS:
        subset = train.select_tasks([task])
        net = MTLSplitNet.from_tasks("mobilenet_v3_tiny", list(subset.tasks), 32, seed=5)
        MultiTaskTrainer(config).fit(net, subset)
        stl_accuracy[task] = evaluate(net, test.select_tasks([task]))[task]
        total_stl_params += net.num_parameters()
        print(f"  {task:>10}: {stl_accuracy[task]:.1%}  ({net.num_parameters():,} params)")
    print(f"  total STL parameters: {total_stl_params:,}")

    print("\nMTL-Split: one shared backbone, three heads")
    mtl_net = MTLSplitNet.from_tasks("mobilenet_v3_tiny", list(train.tasks), 32, seed=5)
    MultiTaskTrainer(config).fit(mtl_net, train)
    mtl_accuracy = evaluate(mtl_net, test)
    for task in TASKS:
        delta = mtl_accuracy[task] - stl_accuracy[task]
        print(f"  {task:>10}: {mtl_accuracy[task]:.1%}  ({delta:+.1%} vs STL)")
    print(
        f"  total MTL parameters: {mtl_net.num_parameters():,} "
        f"({1 - mtl_net.num_parameters() / total_stl_params:.0%} fewer than STL)"
    )

    print("\ndeployment decision for the in-vehicle box (full-scale profile):")
    reports = compare_paradigms(
        get_spec("mobilenet_v3_small"),
        num_tasks=3,
        edge_device=JETSON_NANO,
        server_device=RTX3090_SERVER,
        channel=LTE_UPLINK,
        input_size=1024,
        raw_input_hw=(1920, 1080),
    )
    print(render_paradigm_comparison(reports))
    print(
        "\nconclusion: LoC with one-net-per-task strains the box; RoC pays "
        "the full camera frame on the uplink every inference; MTL-Split "
        "keeps one backbone on the box and ships a lightweight Z_b."
    )


if __name__ == "__main__":
    main()
