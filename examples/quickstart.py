"""Quickstart: train MTL-Split on noisy 3D Shapes and deploy it split.

Walks the full story of the paper in ~2 minutes on a laptop CPU:

1. generate the noisy 3D-Shapes workload (T1 = object size, T2 = object
   type — the paper's Table 1 configuration);
2. build an MTL-Split network: one shared backbone + two task heads;
3. train jointly by minimising the summed loss (Eq. 4);
4. compare against chance and inspect per-task accuracy;
5. declare the split deployment with ``repro.deploy`` — the edge half,
   the simulated channel and the server half are wired (and compiled by
   the fused inference engine) from one ``DeploymentSpec`` — verifying
   the split changes no predictions;
6. stream several batches with edge/server execution overlapped and
   read the throughput report;
7. serve concurrent single-image requests through ``submit()``, which
   dynamically micro-batches them into the execution engine.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro import data, nn
from repro.core import MTLSplitNet, MultiTaskTrainer, TrainConfig, evaluate
from repro.deployment import render_throughput
from repro.nn.tensor import Tensor


def main() -> None:
    print("1) generating noisy 3D-Shapes data (T1 = size, T2 = type) ...")
    dataset = data.make_shapes3d(1200, tasks=("scale", "shape"), noise_amount=0.15)
    train, val, test = data.train_val_test_split(dataset, rng=np.random.default_rng(0))
    print(f"   {train=}\n   {test=}".replace("train=", "").replace("test=", ""))

    print("2) building MTLSplitNet (MobileNetV3 backbone + 2 MLP heads) ...")
    net = MTLSplitNet.from_tasks("mobilenet_v3_tiny", list(train.tasks), input_size=32)
    print(f"   {net}")

    print("3) joint training (L_total = sum of task losses, AdamW) ...")
    trainer = MultiTaskTrainer(TrainConfig(epochs=4, lr=1e-2, verbose=True))
    trainer.fit(net, train, val_set=val)

    print("4) test accuracy per task:")
    accuracy = evaluate(net, test)
    for task, value in accuracy.items():
        chance = 1.0 / test.task_info(task).num_classes
        print(f"   {task:>6}: {value:.1%}  (chance {chance:.1%})")

    print("5) split deployment: edge -> Z_b over gigabit -> server heads ...")
    net.eval()
    deployment = repro.deploy(model=net, channel="gigabit_ethernet", input_size=32)
    deployment.warmup([16])
    logits = deployment.infer(test.images[:16])
    with nn.no_grad():
        monolithic = net(Tensor(test.images[:16]))
    for task in net.task_names:
        assert np.allclose(logits[task], monolithic[task].data, atol=1e-4)
    trace = deployment.traces[0]
    print(
        f"   payload {trace.payload_bytes / 1024:.1f} KiB, "
        f"edge {trace.edge_seconds * 1e3:.1f} ms + "
        f"net {trace.transfer_seconds * 1e3:.3f} ms + "
        f"server {trace.server_seconds * 1e3:.1f} ms  (planned engine halves)"
    )
    print("   split outputs == monolithic outputs: OK")

    print("6) overlapped streaming: edge computes batch i+1 while the server")
    print("   handles batch i (double-buffered) ...")
    batches = [test.images[start : start + 16] for start in range(0, 64, 16)]
    _, report = deployment.stream(batches)
    print("   " + render_throughput(report).replace("\n", "\n   "))

    print("7) serving: concurrent submit() requests, micro-batched ...")
    futures = [deployment.submit(image) for image in test.images[:32]]
    rows = [future.result(timeout=60) for future in futures]
    for i, row in enumerate(rows[:16]):  # first 16 overlap the batch above
        for task in net.task_names:
            assert np.allclose(row[task], logits[task][i], atol=1e-5)
    stats = deployment.batching_stats
    print(
        f"   {stats.requests} requests dispatched as {stats.batches} "
        f"micro-batches (mean batch {stats.mean_batch_size:.1f}, "
        f"largest {stats.max_batch_size_seen})"
    )
    deployment.close()
    print("   deployment closed: engine worker threads reclaimed")


if __name__ == "__main__":
    main()
