"""Introduce a new task to a deployed MTL-Split system (paper Sec. 3.3).

The paper motivates its fine-tuning stage with two scenarios: boosting
task-specific performance, and "introducing new tasks to the system".
This example plays the second one on the FACES-like workload:

1. train an MTL-Split system for age + gender;
2. a new requirement arrives: expression recognition;
3. attach a fresh head to the *same* shared backbone (``add_task``) —
   the edge deployment is untouched, only the server gains a head;
4. fine-tune with the paper's two-rate rule (Eqs. 5-6): heads learn at
   ``alpha``, the backbone moves conservatively at ``eta`` (or stays
   frozen), protecting the existing tasks;
5. verify the old tasks survived and the new one works.

Run:  python examples/add_new_task.py
"""

import numpy as np

from repro import data
from repro.core import (
    FineTuneConfig,
    MTLSplitNet,
    MultiTaskTrainer,
    TrainConfig,
    add_task,
    evaluate,
    fine_tune,
)


def main() -> None:
    dataset = data.make_faces(900, seed=9)
    train, _val, test = data.train_val_test_split(
        dataset, val_fraction=0.0, test_fraction=0.25, rng=np.random.default_rng(9)
    )

    print("1) initial system: age + gender on a shared EfficientNet backbone")
    initial_tasks = ["age", "gender"]
    net = MTLSplitNet.from_tasks(
        "efficientnet_tiny", [train.task_info(t) for t in initial_tasks], 32, seed=9
    )
    MultiTaskTrainer(TrainConfig(epochs=4, lr=1e-2, batch_size=64, seed=9)).fit(
        net, train.select_tasks(initial_tasks)
    )
    before = evaluate(net, test.select_tasks(initial_tasks))
    print("   " + "  ".join(f"{t}={before[t]:.1%}" for t in initial_tasks))

    print("2) new requirement: expression recognition")
    extended = add_task(net, train.task_info("expression"), input_size=32, seed=10)
    print(f"   tasks now: {extended.task_names} (backbone weights shared, edge unchanged)")

    print("3) fine-tune: frozen backbone (eta = 0), heads at alpha = 3e-3")
    fine_tune(
        extended, train,
        FineTuneConfig(alpha=3e-3, eta=0.0, epochs=4, batch_size=64, seed=10),
    )
    frozen = evaluate(extended, test)
    print("   " + "  ".join(f"{t}={frozen[t]:.1%}" for t in extended.task_names))

    print("4) gentle joint adaptation: eta = alpha / 100 (Eq. 6)")
    fine_tune(
        extended, train,
        FineTuneConfig(alpha=3e-3, eta=3e-5, epochs=2, batch_size=64, seed=11),
    )
    adapted = evaluate(extended, test)
    print("   " + "  ".join(f"{t}={adapted[t]:.1%}" for t in extended.task_names))

    print("5) regression check on the original tasks:")
    for task in initial_tasks:
        drop = before[task] - adapted[task]
        status = "OK" if drop < 0.10 else "DEGRADED"
        print(
            f"   {task:>10}: before {before[task]:.1%} -> after {adapted[task]:.1%} "
            f"[{status}]"
        )


if __name__ == "__main__":
    main()
