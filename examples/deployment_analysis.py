"""Reproduce the paper's deployment analysis (Table 4 + Sec. 4.2) end to end.

Prints, for the paper's two embedded backbones (plus VGG16, which the
paper excludes as "not optimal for embedded system applications"):

* the analytic Table-4 profile (params, forward/backward memory, Z_b);
* the LoC memory feasibility check on the 4 GB Jetson Nano;
* the RoC-vs-SC transfer-latency comparison on a gigabit channel,
  including the paper's 100-input experiment;
* a degraded-channel sweep showing SC's advantage is bandwidth-independent
  in ratio terms.

Run:  python examples/deployment_analysis.py
"""

from repro.deployment import (
    GIGABIT_ETHERNET,
    JETSON_NANO,
    RTX3090_SERVER,
    compare_paradigms,
    loc_report,
    render_paradigm_comparison,
    render_table4,
    sc_report,
    table4_rows,
)
from repro.models import get_spec

_GB = 1024**3
_MB = 1024 * 1024
PAPER_INPUT = 1024  # reproduces the paper's activation magnitudes
FACES_HW = (2835, 3543)

PAPER_TABLE4 = {
    "mobilenet_v3_small": {
        "params_millions": 0.9, "params_mb": 3.58, "forward_backward_mb": 724.08,
        "estimated_mb": 727.66, "zb_kilo_elements": 55.3, "zb_mb": 0.21,
    },
    "efficientnet_b0": {
        "params_millions": 4.0, "params_mb": 15.45, "forward_backward_mb": 3452.09,
        "estimated_mb": 3467.54, "zb_kilo_elements": 406.06, "zb_mb": 1.56,
    },
}


def main() -> None:
    backbones = ("mobilenet_v3_small", "efficientnet_b0", "vgg16")

    print("== Table 4: backbone and Z_b sizes (input 1024x1024) ==")
    print(render_table4(table4_rows(backbones, input_size=PAPER_INPUT), PAPER_TABLE4))

    print("\n== LoC feasibility on the 4 GB Jetson Nano ==")
    for name in ("mobilenet_v3_small", "efficientnet_b0"):
        spec = get_spec(name)
        for tasks in (2, 3):
            stl = loc_report(spec, tasks, JETSON_NANO, input_size=PAPER_INPUT)
            shared = sc_report(
                spec, tasks, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET,
                input_size=PAPER_INPUT,
            )
            verdict = "fits" if stl.feasible_on_edge else "DOES NOT FIT"
            print(
                f"  {name:<20} {tasks} tasks: STL needs "
                f"{stl.edge_memory_bytes / _GB:5.2f} GB ({verdict}); "
                f"shared backbone needs {shared.edge_memory_bytes / _GB:5.2f} GB "
                f"(saving {1 - shared.edge_memory_bytes / stl.edge_memory_bytes:.0%})"
            )

    print("\n== RoC vs SC transfer, 100 FACES-resolution inferences, gigabit ==")
    spec = get_spec("efficientnet_b0")
    reports = compare_paradigms(
        spec, 3, JETSON_NANO, RTX3090_SERVER, GIGABIT_ETHERNET,
        input_size=PAPER_INPUT, raw_input_hw=FACES_HW,
    )
    roc, sc = reports["roc"], reports["sc"]
    print(
        f"  RoC: {roc.transfer_bytes_per_inference / _MB:6.1f} MB/inference "
        f"-> {100 * roc.transfer_seconds:6.1f} s   (paper: ~115 MB, ~98 s)"
    )
    print(
        f"  SC : {sc.transfer_bytes_per_inference / _MB:6.2f} MB/inference "
        f"-> {100 * sc.transfer_seconds:6.2f} s   (paper claims ~87% saving; "
        f"measured {1 - sc.transfer_seconds / roc.transfer_seconds:.1%})"
    )

    print("\n== full paradigm comparison (EfficientNet, 3 tasks) ==")
    print(render_paradigm_comparison(reports))

    print("\n== degraded-channel sweep (SC keeps its ratio advantage) ==")
    for factor in (1, 10, 100):
        channel = GIGABIT_ETHERNET.degraded(factor) if factor > 1 else GIGABIT_ETHERNET
        sweep = compare_paradigms(
            spec, 3, JETSON_NANO, RTX3090_SERVER, channel,
            input_size=PAPER_INPUT, raw_input_hw=FACES_HW,
        )
        print(
            f"  {channel.bandwidth_bps / 1e6:6.0f} Mbps: "
            f"RoC {100 * sweep['roc'].transfer_seconds:9.1f} s vs "
            f"SC {100 * sweep['sc'].transfer_seconds:7.2f} s per 100 inferences"
        )


if __name__ == "__main__":
    main()
